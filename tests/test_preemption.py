"""Tests for preemption & migration: policies, work-loss model, simulator."""

import itertools
import math

import pytest

from repro.circuits.library import ghz, ising
from repro.cloud import CloudTopology, QuantumCloud
from repro.cloud import job as job_module
from repro.multitenant import (
    ClusterView,
    DeadlineRescue,
    JobOutcome,
    JobProgress,
    MigrateRequest,
    MigrateToRebalance,
    MultiTenantSimulator,
    NeverPreempt,
    PendingJobView,
    PreemptRequest,
    PreemptionPolicy,
    PriorityPreempt,
    QueueingDeadline,
    RunningJobView,
    fifo_batch_manager,
    poisson_arrivals,
    priority_batch_manager,
    total_preemptions,
)
from repro.placement import CloudQCPlacement, MappingError
from repro.scheduling import (
    AverageScheduler,
    CloudQCScheduler,
    GreedyScheduler,
    RandomScheduler,
    RemoteDAG,
)
from repro.sim import FrontLayer


def contended_cloud(epr_success_probability=1.0):
    """Two QPUs that can hold one 24-qubit job plus one small job."""
    topology = CloudTopology.line(2)
    return QuantumCloud(
        topology,
        computing_qubits_per_qpu=16,
        communication_qubits_per_qpu=2,
        epr_success_probability=epr_success_probability,
    )


def make_simulator(cloud, batch_manager=None, **kwargs):
    return MultiTenantSimulator(
        cloud,
        placement_algorithm=CloudQCPlacement(),
        network_scheduler=CloudQCScheduler(),
        batch_manager=batch_manager or fifo_batch_manager(),
        **kwargs,
    )


def pending_view(job_id, qubits=8, priority=1.0, deadline=None, waited=0.0):
    return PendingJobView(
        job_id=job_id,
        num_qubits=qubits,
        arrival_time=0.0,
        waited=waited,
        priority=priority,
        deadline=deadline,
        num_preemptions=0,
    )


def running_view(
    job_id,
    qubits=8,
    priority=1.0,
    elapsed=0.0,
    completed_ops=0,
    total_ops=0,
    qubits_per_qpu=None,
):
    return RunningJobView(
        job_id=job_id,
        num_qubits=qubits,
        priority=priority,
        start_time=0.0,
        elapsed=elapsed,
        completed_ops=completed_ops,
        total_ops=total_ops,
        num_qpus_used=len(qubits_per_qpu) if qubits_per_qpu else 1,
        qubits_per_qpu=qubits_per_qpu or {0: qubits},
    )


def view(pending=(), running=(), available=0, available_per_qpu=None, now=0.0):
    return ClusterView(
        now=now,
        pending=tuple(pending),
        running=tuple(running),
        available=available,
        available_per_qpu=available_per_qpu or {},
    )


class TestNeverPreempt:
    def test_decides_nothing_and_is_disabled(self):
        policy = NeverPreempt()
        assert policy.enabled is False
        assert policy.decide(view(pending=[pending_view("job-0")])) == []
        assert policy.rescue_check_time(None, 10.0) is None


class TestPriorityPreemptPolicy:
    def test_evicts_lower_priority_victim_for_blocked_job(self):
        actions = PriorityPreempt().decide(
            view(
                pending=[pending_view("p", qubits=8, priority=10.0)],
                running=[running_view("victim", qubits=8, priority=50.0)],
                available=2,
            )
        )
        assert actions == [PreemptRequest("victim")]

    def test_no_eviction_when_job_fits_free_capacity(self):
        actions = PriorityPreempt().decide(
            view(
                pending=[pending_view("p", qubits=8, priority=10.0)],
                running=[running_view("victim", qubits=8, priority=50.0)],
                available=8,
            )
        )
        assert actions == []

    def test_equal_priority_can_never_evict(self):
        # Strictly-lower-priority victims only: no preemption ping-pong.
        actions = PriorityPreempt().decide(
            view(
                pending=[pending_view("p", qubits=8, priority=50.0)],
                running=[running_view("victim", qubits=8, priority=50.0)],
                available=0,
            )
        )
        assert actions == []

    def test_min_priority_gap_filters_victims(self):
        v = view(
            pending=[pending_view("p", qubits=8, priority=10.0)],
            running=[running_view("victim", qubits=8, priority=14.0)],
            available=0,
        )
        assert PriorityPreempt(min_priority_gap=5.0).decide(v) == []
        assert PriorityPreempt(min_priority_gap=2.0).decide(v) == [
            PreemptRequest("victim")
        ]

    def test_cheapest_victim_least_elapsed_work_first(self):
        actions = PriorityPreempt().decide(
            view(
                pending=[pending_view("p", qubits=8, priority=1.0)],
                running=[
                    running_view("old", qubits=8, priority=9.0, elapsed=40.0),
                    running_view("young", qubits=8, priority=9.0, elapsed=2.0),
                ],
                available=0,
            )
        )
        assert actions == [PreemptRequest("young")]

    def test_no_eviction_when_victims_cannot_cover_the_need(self):
        # Evicting without seating the blocked job is pure waste.
        actions = PriorityPreempt().decide(
            view(
                pending=[pending_view("p", qubits=30, priority=1.0)],
                running=[running_view("victim", qubits=8, priority=9.0)],
                available=4,
            )
        )
        assert actions == []

    def test_multiple_victims_accumulate_until_covered(self):
        actions = PriorityPreempt().decide(
            view(
                pending=[pending_view("p", qubits=16, priority=1.0)],
                running=[
                    running_view("a", qubits=8, priority=9.0, elapsed=1.0),
                    running_view("b", qubits=8, priority=9.0, elapsed=2.0),
                    running_view("c", qubits=8, priority=9.0, elapsed=3.0),
                ],
                available=0,
            )
        )
        assert actions == [PreemptRequest("a"), PreemptRequest("b")]

    def test_validation(self):
        with pytest.raises(ValueError):
            PriorityPreempt(min_priority_gap=-1.0)


class TestDeadlineRescuePolicy:
    def test_rescues_only_imminent_deadlines(self):
        policy = DeadlineRescue(horizon=5.0)
        far = view(
            pending=[pending_view("p", qubits=8, deadline=100.0)],
            running=[running_view("victim", qubits=8)],
            available=0,
            now=0.0,
        )
        assert policy.decide(far) == []
        near = view(
            pending=[pending_view("p", qubits=8, deadline=4.0)],
            running=[running_view("victim", qubits=8)],
            available=0,
            now=0.0,
        )
        assert policy.decide(near) == [PreemptRequest("victim")]

    def test_no_rescue_when_free_capacity_suffices(self):
        policy = DeadlineRescue(horizon=5.0)
        v = view(
            pending=[pending_view("p", qubits=8, deadline=4.0)],
            running=[running_view("victim", qubits=8)],
            available=8,
        )
        assert policy.decide(v) == []

    def test_jobs_without_deadlines_are_never_rescued(self):
        policy = DeadlineRescue(horizon=5.0)
        v = view(
            pending=[pending_view("p", qubits=8, deadline=None)],
            running=[running_view("victim", qubits=8)],
            available=0,
        )
        assert policy.decide(v) == []

    def test_cheapest_victims_cover_aggregate_need(self):
        policy = DeadlineRescue(horizon=5.0)
        actions = policy.decide(
            view(
                pending=[
                    pending_view("p1", qubits=8, deadline=3.0),
                    pending_view("p2", qubits=8, deadline=4.0),
                ],
                running=[
                    running_view("cheap", qubits=8, elapsed=1.0),
                    running_view("mid", qubits=8, elapsed=5.0),
                    running_view("dear", qubits=8, elapsed=50.0),
                ],
                available=0,
            )
        )
        assert actions == [PreemptRequest("cheap"), PreemptRequest("mid")]

    def test_no_eviction_when_need_cannot_be_covered(self):
        policy = DeadlineRescue(horizon=5.0)
        actions = policy.decide(
            view(
                pending=[pending_view("p", qubits=30, deadline=3.0)],
                running=[running_view("victim", qubits=8)],
                available=0,
            )
        )
        assert actions == []

    def test_savable_subset_is_rescued_when_not_all_can_be(self):
        # Regression: an uncoverable imminent job must not veto the rescue
        # of a coverable one -- coverage is per job, in batch-manager order.
        policy = DeadlineRescue(horizon=5.0)
        actions = policy.decide(
            view(
                pending=[
                    pending_view("savable", qubits=40, deadline=3.0),
                    pending_view("doomed", qubits=40, deadline=4.0),
                ],
                running=[running_view("anchor", qubits=51)],
                available=9,
            )
        )
        assert actions == [PreemptRequest("anchor")]

    def test_capacity_claimed_by_earlier_pending_jobs_is_debited(self):
        # Regression: a non-imminent job ahead in placement order will be
        # seated first and consume the free capacity, so the imminent job
        # behind it still needs a rescue even though it "fits" raw free
        # capacity at the decision instant.
        policy = DeadlineRescue(horizon=5.0)
        actions = policy.decide(
            view(
                pending=[
                    pending_view("early-far", qubits=5, deadline=1000.0),
                    pending_view("imminent", qubits=5, deadline=3.0),
                ],
                running=[running_view("victim", qubits=8)],
                available=5,
            )
        )
        assert actions == [PreemptRequest("victim")]

    def test_nonfitting_far_deadline_job_does_not_consume_capacity(self):
        # A non-imminent job too big to place is skipped by the placement
        # pass, so it must not inflate the rescue need.
        policy = DeadlineRescue(horizon=5.0)
        actions = policy.decide(
            view(
                pending=[
                    pending_view("early-huge", qubits=30, deadline=1000.0),
                    pending_view("imminent", qubits=5, deadline=3.0),
                ],
                running=[running_view("victim", qubits=8)],
                available=5,
            )
        )
        assert actions == []

    def test_rescue_check_time_precedes_the_deadline(self):
        policy = DeadlineRescue(horizon=5.0)
        assert policy.rescue_check_time(None, 42.0) == 37.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DeadlineRescue(horizon=0.0)
        with pytest.raises(ValueError):
            DeadlineRescue(horizon=-2.0)


class TestMigrateToRebalancePolicy:
    def test_nominates_scattered_job_when_one_qpu_could_hold_it(self):
        policy = MigrateToRebalance()
        actions = policy.decide(
            view(
                running=[
                    running_view(
                        "scattered", qubits=10, qubits_per_qpu={0: 5, 1: 5}
                    )
                ],
                available_per_qpu={0: 6, 1: 2, 2: 4},
            )
        )
        assert actions == [MigrateRequest("scattered")]

    def test_ignores_single_qpu_jobs(self):
        policy = MigrateToRebalance()
        actions = policy.decide(
            view(
                running=[running_view("local", qubits=4, qubits_per_qpu={0: 4})],
                available_per_qpu={0: 6, 1: 10},
            )
        )
        assert actions == []

    def test_no_nomination_without_a_big_enough_hole(self):
        policy = MigrateToRebalance()
        actions = policy.decide(
            view(
                running=[
                    running_view(
                        "scattered", qubits=10, qubits_per_qpu={0: 5, 1: 5}
                    )
                ],
                available_per_qpu={0: 2, 1: 2, 2: 9},
            )
        )
        assert actions == []

    def test_max_migrations_bounds_disruption(self):
        policy = MigrateToRebalance(max_migrations=1)
        actions = policy.decide(
            view(
                running=[
                    running_view("a", qubits=6, qubits_per_qpu={0: 3, 1: 3}),
                    running_view("b", qubits=6, qubits_per_qpu={2: 3, 3: 3}),
                ],
                available_per_qpu={0: 7, 1: 7, 2: 7, 3: 7},
            )
        )
        assert len(actions) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MigrateToRebalance(min_qpus_used=1)
        with pytest.raises(ValueError):
            MigrateToRebalance(max_migrations=0)


class TestJobProgressLedger:
    def test_resume_banks_progress(self):
        progress = JobProgress()
        progress.record_stop(start_time=10.0, completed_ops=4, now=16.0, resume=True)
        assert progress.completed_ops == 4
        assert progress.elapsed_local == pytest.approx(6.0)
        assert progress.wasted_time == 0.0
        assert progress.first_placement_time == 10.0

    def test_restart_discards_and_accounts_waste(self):
        progress = JobProgress()
        progress.record_stop(start_time=10.0, completed_ops=4, now=16.0, resume=False)
        assert progress.completed_ops == 0
        assert progress.elapsed_local == 0.0
        assert progress.wasted_time == pytest.approx(6.0)
        assert progress.wasted_ops == 4

    def test_resume_accumulates_across_segments(self):
        progress = JobProgress()
        progress.record_stop(start_time=0.0, completed_ops=2, now=5.0, resume=True)
        progress.record_stop(start_time=20.0, completed_ops=7, now=24.0, resume=True)
        assert progress.completed_ops == 7  # absolute, not incremental
        assert progress.elapsed_local == pytest.approx(9.0)
        assert progress.first_placement_time == 0.0


class TestFrontLayerProgress:
    @staticmethod
    def chain_dag():
        # GHZ chain with alternating QPUs: every CX is remote, sequentially
        # dependent, so the DAG is a 7-operation path.
        circuit = ghz(8)
        mapping = {q: q % 2 for q in range(8)}
        return RemoteDAG(circuit, mapping)

    def test_snapshot_reports_progress(self):
        front = FrontLayer(self.chain_dag())
        snap = front.snapshot()
        assert snap["total"] == 7
        assert snap["completed"] == 0
        assert snap["ready"] == 1

    def test_fast_forward_credits_in_dependency_order(self):
        front = FrontLayer(self.chain_dag())
        credited = front.fast_forward(3, finish_time=5.0)
        assert credited == 3
        assert front.completed == 3
        assert not front.done
        assert front.last_finish == 5.0

    def test_fast_forward_caps_at_dag_size(self):
        front = FrontLayer(self.chain_dag())
        credited = front.fast_forward(100, finish_time=5.0)
        assert credited == 7
        assert front.done


class EvictEverything(PreemptionPolicy):
    """Test policy: evict every running job at every decision point."""

    name = "evict-everything"

    def decide(self, view):
        return [PreemptRequest(r.job_id) for r in view.running]


class FirstPlacementOnly:
    """Placement wrapper: only circuits below a qubit bound ever place."""

    def __init__(self, inner, max_qubits):
        self.inner = inner
        self.max_qubits = max_qubits

    def place(self, circuit, cloud, seed=None, context=None):
        if circuit.num_qubits > self.max_qubits:
            raise MappingError("denied by test placement gate")
        return self.inner.place(circuit, cloud, seed=seed, context=context)


class TestSimulatorIntegration:
    def test_deadline_rescue_saves_the_expiring_job(self):
        simulator = make_simulator(
            contended_cloud(),
            admission_policy=QueueingDeadline(max_delay=10.0),
            preemption_policy=DeadlineRescue(horizon=5.0),
        )
        results = simulator.run_stream([ghz(24), ghz(24)], [0.0, 1.0], seed=1)
        first, second = sorted(results, key=lambda r: r.arrival_time)
        # Without preemption the second job expires (pinned in
        # test_admission.py); the rescue evicts the first instead.
        assert second.outcome == JobOutcome.COMPLETED
        assert second.placement_time == pytest.approx(6.0)  # deadline - horizon
        assert first.outcome == JobOutcome.COMPLETED
        assert first.num_preemptions == 1

    def test_resume_credits_banked_work(self):
        simulator = make_simulator(
            contended_cloud(),
            admission_policy=QueueingDeadline(max_delay=10.0),
            preemption_policy=DeadlineRescue(horizon=5.0),
            work_loss="resume",
        )
        results = simulator.run_stream([ghz(24), ghz(24)], [0.0, 1.0], seed=1)
        first, second = sorted(results, key=lambda r: r.arrival_time)
        # ghz(24) needs 23.1 units of work.  The first job runs [0, 6), is
        # evicted, resumes when the second completes (29.1), and finishes
        # after its remaining 17.1 units: no work is redone.
        assert second.completion_time == pytest.approx(29.1)
        assert first.completion_time == pytest.approx(46.2)
        assert first.wasted_time == 0.0
        # Its queueing delay still measures the wait for the first placement.
        assert first.placement_time == 0.0

    def test_restart_redoes_and_accounts_wasted_work(self):
        simulator = make_simulator(
            contended_cloud(),
            admission_policy=QueueingDeadline(max_delay=10.0),
            preemption_policy=DeadlineRescue(horizon=5.0),
            work_loss="restart",
        )
        results = simulator.run_stream([ghz(24), ghz(24)], [0.0, 1.0], seed=1)
        first, _ = sorted(results, key=lambda r: r.arrival_time)
        # Restart: the 6 units executed before eviction are redone in full.
        assert first.completion_time == pytest.approx(29.1 + 23.1)
        assert first.wasted_time == pytest.approx(6.0)

    def test_invalid_work_loss_rejected(self):
        with pytest.raises(ValueError):
            make_simulator(contended_cloud(), work_loss="forget")

    def test_priority_preempt_evicts_heavier_running_job(self):
        simulator = make_simulator(
            contended_cloud(),
            batch_manager=priority_batch_manager(),
            preemption_policy=PriorityPreempt(),
        )
        results = simulator.run_stream([ghz(24), ghz(16)], [0.0, 5.0], seed=1)
        heavy, light = sorted(results, key=lambda r: r.arrival_time)
        # The lighter job (smaller Eq. 11 metric) evicts the heavy one at its
        # arrival instant instead of queueing behind it.
        assert light.placement_time == 5.0
        assert heavy.num_preemptions == 1
        assert heavy.outcome == light.outcome == JobOutcome.COMPLETED

    def test_migrate_consolidates_after_capacity_frees(self):
        cloud = contended_cloud(epr_success_probability=0.25)
        simulator = make_simulator(
            cloud, preemption_policy=MigrateToRebalance()
        )
        # ising(12) arrives while both QPUs are half-full, so it is split
        # across them; once the two ghz(10) complete, it migrates onto one
        # QPU and its remaining remote operations disappear.
        results = simulator.run_stream(
            [ghz(10), ghz(10), ising(12)], [0.0, 0.0, 1.0], seed=3
        )
        migrated = [r for r in results if r.circuit_name == "ising_n12"][0]
        assert migrated.num_migrations == 1
        assert migrated.num_qpus_used == 1
        assert migrated.outcome == JobOutcome.COMPLETED

    def test_stranded_preempted_outcome(self):
        # A job evicted by the policy whose re-placement then keeps failing
        # must end the run reported as outcome="preempted", not crash it.
        gate = FirstPlacementOnly(CloudQCPlacement(), 8)
        simulator = MultiTenantSimulator(
            contended_cloud(),
            placement_algorithm=gate,
            network_scheduler=CloudQCScheduler(),
            batch_manager=fifo_batch_manager(),
            preemption_policy=EvictEverything(),
        )

        original_place = gate.place
        placed_once = []

        def place_once(circuit, cloud, seed=None, context=None):
            if circuit.num_qubits == 8 and placed_once:
                raise MappingError("denied after first placement")
            result = original_place(circuit, cloud, seed=seed, context=context)
            if circuit.num_qubits == 8:
                placed_once.append(True)
            return result

        gate.place = place_once
        results = simulator.run_stream([ghz(8), ghz(4)], [0.0, 1.0], seed=1)
        stranded = [r for r in results if r.circuit_name == "ghz_n8"][0]
        small = [r for r in results if r.circuit_name == "ghz_n4"][0]
        assert small.outcome == JobOutcome.COMPLETED
        assert stranded.outcome == JobOutcome.PREEMPTED
        assert stranded.num_preemptions >= 1
        assert stranded.placement_time == 0.0  # it did run once
        assert stranded.queueing_delay == 0.0  # waited 0 for first placement
        assert math.isnan(stranded.completion_time)
        assert stranded.dropped_time is not None
        assert stranded.wasted_time > 0.0  # everything it ran is lost


class EvictBigOnce(PreemptionPolicy):
    """Test policy: evict the first running 24-qubit job it sees, once."""

    name = "evict-big-once"

    def reset(self):
        self.fired = False

    def decide(self, view):
        if self.fired:
            return []
        victims = [r for r in view.running if r.num_qubits == 24]
        if not victims:
            return []
        self.fired = True
        return [PreemptRequest(victims[0].job_id)]


class TestMidRoundEviction:
    def test_in_flight_round_is_not_banked(self):
        """Regression: EPR successes are applied optimistically at round
        *start* with a future finish time; a job evicted while that round is
        still in flight lost its qubits before the round completed, so the
        sampled op must not enter the resume ledger."""
        from repro.multitenant.cluster_sim import _EventDrivenBatch

        # ghz(24) spans both QPUs with one remote op; p=1.0 samples it
        # successful the moment the round starts at t=0 (round ends at
        # t=10, op finish at 10.2).  The t=5 arrival triggers a mid-round
        # decision point that evicts it exactly once.
        simulator = make_simulator(
            contended_cloud(epr_success_probability=1.0),
            preemption_policy=EvictBigOnce(),
        )
        batch = _EventDrivenBatch(
            simulator, [ghz(24), ghz(4)], [0.0, 5.0], seed=1
        )
        results = batch.execute()
        assert all(r.completed for r in results)
        big = [r for r in results if r.circuit_name == "ghz_n24"][0]
        assert big.num_preemptions == 1
        # The op was in flight at the eviction instant: nothing banked, so
        # the resumed job re-earns it in a fresh round.
        assert batch.progress[big.job_id].completed_ops == 0

    def test_disabled_policy_never_builds_a_view(self, monkeypatch):
        """The default path must not even construct the decision view: that
        is the structural guarantee behind 'free when disabled' (a timing
        A/B against the same binary cannot pin this)."""
        from repro.multitenant import cluster_sim as sim_module

        def forbidden(self, now):
            raise AssertionError("view built under NeverPreempt")

        monkeypatch.setattr(
            sim_module._EventDrivenBatch, "_cluster_view", forbidden
        )
        simulator = make_simulator(contended_cloud())
        results = simulator.run_stream([ghz(24), ghz(8)], [0.0, 1.0], seed=1)
        assert all(r.completed for r in results)


class EnabledNoOp(PreemptionPolicy):
    """Enabled hook that never acts: must be bit-identical to NeverPreempt."""

    name = "enabled-noop"

    def decide(self, view):
        return []


def result_key(result):
    return (
        result.job_id,
        result.circuit_name,
        result.arrival_time,
        result.placement_time,
        result.completion_time,
        result.num_remote_operations,
        result.num_qpus_used,
        result.outcome,
        result.num_preemptions,
        result.num_migrations,
        result.wasted_time,
        result.wasted_ops,
    )


SCHEDULERS = [
    CloudQCScheduler,
    GreedyScheduler,
    AverageScheduler,
    RandomScheduler,
]


class TestNeverPreemptBitIdentity:
    """The preemption machinery must not move a single bit of the default
    path: NeverPreempt (disabled hook) and an enabled-but-inert policy both
    reproduce the PR-4 results exactly, for every network scheduler, in
    batch and stream mode."""

    @staticmethod
    def _run(policy, scheduler_cls, arrivals, seed=7):
        # Realign the process-global job counter: scheduler tiebreaks read
        # job-id strings, so comparable runs must mint identical ids.
        job_module._job_counter = itertools.count()
        cloud = QuantumCloud(
            CloudTopology.line(4),
            computing_qubits_per_qpu=16,
            communication_qubits_per_qpu=4,
            epr_success_probability=0.9,
        )
        simulator = MultiTenantSimulator(
            cloud,
            placement_algorithm=CloudQCPlacement(),
            network_scheduler=scheduler_cls(),
            batch_manager=fifo_batch_manager(),
            preemption_policy=policy,
        )
        circuits = [ghz(24), ising(34), ghz(16), ghz(24)]
        return simulator.run_stream(circuits, arrivals, seed=seed)

    @pytest.mark.parametrize("scheduler_cls", SCHEDULERS)
    def test_stream_mode_bit_identical(self, scheduler_cls):
        arrivals = [0.0, 11.0, 25.0, 40.0]
        default = self._run(None, scheduler_cls, arrivals)
        never = self._run(NeverPreempt(), scheduler_cls, arrivals)
        noop = self._run(EnabledNoOp(), scheduler_cls, arrivals)
        assert [result_key(r) for r in default] == [result_key(r) for r in never]
        assert [result_key(r) for r in default] == [result_key(r) for r in noop]

    @pytest.mark.parametrize("scheduler_cls", SCHEDULERS)
    def test_batch_mode_bit_identical(self, scheduler_cls):
        arrivals = [0.0, 0.0, 0.0, 0.0]
        default = self._run(None, scheduler_cls, arrivals)
        never = self._run(NeverPreempt(), scheduler_cls, arrivals)
        noop = self._run(EnabledNoOp(), scheduler_cls, arrivals)
        assert [result_key(r) for r in default] == [result_key(r) for r in never]
        assert [result_key(r) for r in default] == [result_key(r) for r in noop]

    def test_golden_stream_default_cloud_with_explicit_never_preempt(self):
        # The exact pinned numbers of test_admission.py's golden stream, now
        # with the preemption machinery explicitly constructed.
        cloud = QuantumCloud.default(seed=7)
        simulator = MultiTenantSimulator(
            cloud,
            placement_algorithm=CloudQCPlacement(),
            network_scheduler=CloudQCScheduler(),
            batch_manager=fifo_batch_manager(),
            preemption_policy=NeverPreempt(),
        )
        results = simulator.run_stream(
            [ghz(24), ising(34), ghz(16)], [0.0, 40.0, 80.0], seed=2
        )
        got = [
            (r.circuit_name, r.placement_time, r.completion_time)
            for r in results
        ]
        assert got == [
            ("ghz_n24", 0.0, pytest.approx(23.1)),
            ("ising_n34", 40.0, pytest.approx(66.0)),
            ("ghz_n16", 80.0, pytest.approx(95.1)),
        ]
        assert total_preemptions(results) == 0

    def test_golden_batch_contended_with_explicit_never_preempt(self):
        # Pinned batch numbers from test_cluster_sim.TestGoldenBatchResults.
        simulator = MultiTenantSimulator(
            contended_cloud(),
            placement_algorithm=CloudQCPlacement(),
            network_scheduler=CloudQCScheduler(),
            batch_manager=priority_batch_manager(),
            preemption_policy=NeverPreempt(),
        )
        results = simulator.run_batch([ghz(24), ghz(24)], seed=1)
        ordered = sorted(results, key=lambda r: r.placement_time)
        assert [r.placement_time for r in ordered] == pytest.approx([0.0, 23.1])
        assert [r.completion_time for r in ordered] == pytest.approx([23.1, 46.2])

    def test_golden_stream_contended_priority_with_explicit_never_preempt(self):
        # Pinned numbers from test_admission.test_golden_stream_contended_priority.
        cloud = contended_cloud(epr_success_probability=0.5)
        simulator = MultiTenantSimulator(
            cloud,
            placement_algorithm=CloudQCPlacement(),
            network_scheduler=CloudQCScheduler(),
            batch_manager=priority_batch_manager(),
            preemption_policy=NeverPreempt(),
        )
        arrivals = poisson_arrivals(4, rate=0.02, seed=9)
        results = simulator.run_stream(
            [ghz(24), ghz(16), ghz(24), ghz(8)], arrivals, seed=13
        )
        got = [
            (r.circuit_name, r.placement_time, r.completion_time)
            for r in results
        ]
        assert got == [
            ("ghz_n24", pytest.approx(164.4453786366743), pytest.approx(200.4453786366743)),
            ("ghz_n16", pytest.approx(200.4453786366743), pytest.approx(215.5453786366743)),
            ("ghz_n24", pytest.approx(236.17315062348837), pytest.approx(262.17315062348837)),
            ("ghz_n8", pytest.approx(286.1095769402868), pytest.approx(293.2095769402868)),
        ]
