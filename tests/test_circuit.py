"""Tests for the QuantumCircuit container."""

import pytest

from repro.circuits import Gate, QuantumCircuit


class TestConstruction:
    def test_empty_circuit(self):
        circuit = QuantumCircuit(3)
        assert circuit.num_qubits == 3
        assert circuit.num_gates == 0
        assert circuit.depth() == 0

    def test_invalid_qubit_count(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)

    def test_append_validates_register(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            circuit.append(Gate("h", (5,)))

    def test_construct_from_gates(self):
        gates = [Gate("h", (0,)), Gate("cx", (0, 1))]
        circuit = QuantumCircuit(2, gates)
        assert circuit.num_gates == 2
        assert circuit.gates == tuple(gates)

    def test_helper_methods_build_expected_gates(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.rz(0.3, 2)
        circuit.measure(1)
        names = [g.name for g in circuit]
        assert names == ["h", "cx", "rz", "measure"]


class TestCounting:
    def test_gate_counts(self, vqe_like_circuit):
        assert vqe_like_circuit.num_gates == 10
        assert vqe_like_circuit.num_two_qubit_gates == 3
        assert vqe_like_circuit.num_single_qubit_gates == 7

    def test_count_ops(self, bell_circuit):
        assert bell_circuit.count_ops() == {"h": 1, "cx": 1}

    def test_measure_all(self):
        circuit = QuantumCircuit(4)
        circuit.measure_all()
        assert circuit.num_measurements == 4


class TestDepth:
    def test_bell_depth(self, bell_circuit):
        assert bell_circuit.depth() == 2

    def test_parallel_gates_share_a_layer(self):
        circuit = QuantumCircuit(4)
        for q in range(4):
            circuit.h(q)
        assert circuit.depth() == 1

    def test_serial_chain_depth(self, chain_circuit):
        # H + 7 chained CX gates; the CX chain is fully serial.
        assert chain_circuit.depth() == 8

    def test_fig1_front_layer_depth(self, vqe_like_circuit):
        assert vqe_like_circuit.depth() == 5


class TestInteractions:
    def test_two_qubit_interactions_weights(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 0)
        circuit.cz(1, 2)
        assert circuit.two_qubit_interactions() == {(0, 1): 2, (1, 2): 1}

    def test_active_qubits(self):
        circuit = QuantumCircuit(5)
        circuit.cx(0, 3)
        assert circuit.active_qubits() == (0, 3)


class TestTransforms:
    def test_copy_is_independent(self, bell_circuit):
        clone = bell_circuit.copy()
        clone.x(0)
        assert clone.num_gates == bell_circuit.num_gates + 1

    def test_remap_qubits(self, bell_circuit):
        remapped = bell_circuit.remap_qubits({0: 1, 1: 0})
        assert remapped.gates[1].qubits == (1, 0)

    def test_without_measurements(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.measure_all()
        assert circuit.without_measurements().num_gates == 1

    def test_compose_concatenates(self, bell_circuit):
        other = QuantumCircuit(3)
        other.h(2)
        combined = bell_circuit.compose(other)
        assert combined.num_qubits == 3
        assert combined.num_gates == 3

    def test_equality_and_hash(self, bell_circuit):
        assert bell_circuit == bell_circuit.copy()
        assert hash(bell_circuit) == hash(bell_circuit.copy())
