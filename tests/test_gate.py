"""Tests for the gate model."""

import pytest

from repro.circuits import Gate, GateKind, classify_gate, two_qubit_pairs


class TestGateConstruction:
    def test_basic_single_qubit_gate(self):
        gate = Gate("h", (0,))
        assert gate.name == "h"
        assert gate.qubits == (0,)
        assert gate.kind is GateKind.SINGLE_QUBIT
        assert gate.num_qubits == 1

    def test_name_is_lowercased(self):
        assert Gate("CX", (0, 1)).name == "cx"

    def test_two_qubit_gate_kind(self):
        gate = Gate("cx", (0, 1))
        assert gate.is_two_qubit
        assert not gate.is_single_qubit
        assert not gate.is_measurement

    def test_measurement_kind(self):
        assert Gate("measure", (3,)).is_measurement

    def test_params_are_floats(self):
        gate = Gate("rz", (0,), (1,))
        assert gate.params == (1.0,)
        assert isinstance(gate.params[0], float)

    def test_empty_qubits_rejected(self):
        with pytest.raises(ValueError):
            Gate("h", ())

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            Gate("cx", (1, 1))

    def test_negative_qubit_rejected(self):
        with pytest.raises(ValueError):
            Gate("h", (-1,))

    def test_gate_is_hashable_and_equal(self):
        assert Gate("cx", (0, 1)) == Gate("cx", (0, 1))
        assert hash(Gate("cx", (0, 1))) == hash(Gate("cx", (0, 1)))
        assert Gate("cx", (0, 1)) != Gate("cx", (1, 0))


class TestClassification:
    @pytest.mark.parametrize("name", ["h", "x", "rz", "t", "sdg", "u3"])
    def test_known_single_qubit_names(self, name):
        assert classify_gate(name, 1) is GateKind.SINGLE_QUBIT

    @pytest.mark.parametrize("name", ["cx", "cz", "swap", "rzz", "cp"])
    def test_known_two_qubit_names(self, name):
        assert classify_gate(name, 2) is GateKind.TWO_QUBIT

    def test_unknown_gate_falls_back_to_operand_count(self):
        assert classify_gate("mygate", 2) is GateKind.TWO_QUBIT
        assert classify_gate("mygate", 1) is GateKind.SINGLE_QUBIT

    def test_barrier_kind(self):
        assert classify_gate("barrier", 3) is GateKind.BARRIER


class TestRemap:
    def test_remap_changes_mapped_qubits(self):
        gate = Gate("cx", (0, 1))
        remapped = gate.remap({0: 5, 1: 9})
        assert remapped.qubits == (5, 9)
        assert remapped.name == "cx"

    def test_remap_keeps_unmapped_qubits(self):
        gate = Gate("cx", (0, 1))
        assert gate.remap({0: 4}).qubits == (4, 1)

    def test_remap_preserves_params(self):
        gate = Gate("rz", (2,), (0.7,))
        assert gate.remap({2: 0}).params == (0.7,)


class TestTwoQubitPairs:
    def test_pairs_are_sorted_and_filtered(self):
        gates = [Gate("h", (0,)), Gate("cx", (3, 1)), Gate("cz", (0, 2))]
        assert list(two_qubit_pairs(gates)) == [(1, 3), (0, 2)]

    def test_no_two_qubit_gates(self):
        assert list(two_qubit_pairs([Gate("h", (0,))])) == []
