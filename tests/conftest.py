"""Shared fixtures for the CloudQC reproduction test suite."""

from __future__ import annotations

import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.library import get_circuit
from repro.cloud import CloudTopology, QuantumCloud


@pytest.fixture
def bell_circuit() -> QuantumCircuit:
    """Two-qubit Bell-pair circuit."""
    circuit = QuantumCircuit(2, name="bell")
    circuit.h(0)
    circuit.cx(0, 1)
    return circuit


@pytest.fixture
def vqe_like_circuit() -> QuantumCircuit:
    """The 4-qubit VQE-style circuit of Fig. 1 (structure only)."""
    circuit = QuantumCircuit(4, name="vqe4")
    circuit.h(0)
    circuit.h(2)
    circuit.h(3)
    circuit.cx(1, 2)
    circuit.cx(0, 1)
    circuit.rz(0.5, 1)
    circuit.h(1)
    circuit.cx(2, 3)
    circuit.h(2)
    circuit.y(3)
    return circuit


@pytest.fixture
def chain_circuit() -> QuantumCircuit:
    """Eight-qubit CX chain (GHZ-like): one clean bisection exists."""
    circuit = QuantumCircuit(8, name="chain8")
    circuit.h(0)
    for qubit in range(7):
        circuit.cx(qubit, qubit + 1)
    return circuit


@pytest.fixture
def small_cloud() -> QuantumCloud:
    """Four QPUs in a line, 4 computing / 2 communication qubits each."""
    topology = CloudTopology.line(4)
    return QuantumCloud(
        topology,
        computing_qubits_per_qpu=4,
        communication_qubits_per_qpu=2,
        epr_success_probability=0.5,
    )


@pytest.fixture
def default_cloud() -> QuantumCloud:
    """The paper's default cloud with a fixed seed (20 QPUs, 20/5 qubits)."""
    return QuantumCloud.default(seed=7)


@pytest.fixture
def ring_cloud() -> QuantumCloud:
    """Six QPUs in a ring with ample capacity."""
    topology = CloudTopology.ring(6)
    return QuantumCloud(
        topology,
        computing_qubits_per_qpu=10,
        communication_qubits_per_qpu=3,
        epr_success_probability=0.3,
    )


@pytest.fixture(scope="session")
def knn_circuit() -> QuantumCircuit:
    return get_circuit("knn_n67")


@pytest.fixture(scope="session")
def adder_circuit() -> QuantumCircuit:
    return get_circuit("adder_n64")
