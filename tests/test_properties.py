"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import CircuitDAG, Gate, InteractionGraph, QuantumCircuit, parse_qasm, to_qasm
from repro.cloud import CloudTopology
from repro.partition import edge_cut, is_valid_partition, part_weights, partition_graph
from repro.community import louvain_communities, modularity
from repro.scheduling import (
    AllocationRequest,
    AverageScheduler,
    CloudQCScheduler,
    GreedyScheduler,
    RandomScheduler,
    RemoteDAG,
    is_feasible,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def circuits(draw, max_qubits: int = 8, max_gates: int = 30) -> QuantumCircuit:
    num_qubits = draw(st.integers(min_value=2, max_value=max_qubits))
    num_gates = draw(st.integers(min_value=0, max_value=max_gates))
    circuit = QuantumCircuit(num_qubits, name="random")
    for _ in range(num_gates):
        if draw(st.booleans()):
            qubit = draw(st.integers(min_value=0, max_value=num_qubits - 1))
            circuit.append(Gate("h", (qubit,)))
        else:
            a = draw(st.integers(min_value=0, max_value=num_qubits - 1))
            b = draw(st.integers(min_value=0, max_value=num_qubits - 1))
            if a == b:
                b = (a + 1) % num_qubits
            circuit.append(Gate("cx", (a, b)))
    return circuit


@st.composite
def weighted_graphs(draw, max_nodes: int = 12) -> nx.Graph:
    num_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    graph = nx.Graph()
    graph.add_nodes_from(range(num_nodes))
    for a in range(num_nodes):
        for b in range(a + 1, num_nodes):
            if draw(st.booleans()):
                graph.add_edge(a, b, weight=draw(st.integers(min_value=1, max_value=5)))
    return graph


@st.composite
def allocation_problems(draw, max_capacity: int = 6):
    num_qpus = draw(st.integers(min_value=2, max_value=6))
    capacity = {
        qpu: draw(st.integers(min_value=0, max_value=max_capacity))
        for qpu in range(num_qpus)
    }
    num_requests = draw(st.integers(min_value=0, max_value=10))
    requests = []
    for index in range(num_requests):
        a = draw(st.integers(min_value=0, max_value=num_qpus - 1))
        b = draw(st.integers(min_value=0, max_value=num_qpus - 1))
        if a == b:
            b = (a + 1) % num_qpus
        priority = draw(st.integers(min_value=-5, max_value=10))
        requests.append(
            AllocationRequest(op_id=("job", index), qpu_a=a, qpu_b=b, priority=priority)
        )
    return requests, capacity


# ----------------------------------------------------------------------
# Circuit / DAG invariants
# ----------------------------------------------------------------------


@given(circuits())
@settings(max_examples=40, deadline=None)
def test_depth_never_exceeds_gate_count(circuit):
    assert 0 <= circuit.depth() <= circuit.num_gates


@given(circuits())
@settings(max_examples=40, deadline=None)
def test_interaction_graph_weight_equals_two_qubit_gate_count(circuit):
    graph = InteractionGraph.from_circuit(circuit)
    assert graph.total_weight() == circuit.num_two_qubit_gates


@given(circuits())
@settings(max_examples=40, deadline=None)
def test_dag_layers_partition_gates_and_respect_depth(circuit):
    dag = CircuitDAG(circuit)
    layers = dag.layers()
    flattened = sorted(g for layer in layers for g in layer)
    assert flattened == list(range(circuit.num_gates))
    assert len(layers) == circuit.depth()


@given(circuits())
@settings(max_examples=40, deadline=None)
def test_topological_order_respects_dependencies(circuit):
    dag = CircuitDAG(circuit)
    order = dag.topological_order()
    position = {node: index for index, node in enumerate(order)}
    for node in dag:
        for pred in node.predecessors:
            assert position[pred] < position[node.index]


@given(circuits())
@settings(max_examples=30, deadline=None)
def test_qasm_round_trip_preserves_structure(circuit):
    parsed = parse_qasm(to_qasm(circuit))
    assert parsed.num_qubits == circuit.num_qubits
    assert [g.name for g in parsed] == [g.name for g in circuit]
    assert [g.qubits for g in parsed] == [g.qubits for g in circuit]


# ----------------------------------------------------------------------
# Partitioning invariants
# ----------------------------------------------------------------------


@given(weighted_graphs(), st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=999))
@settings(max_examples=40, deadline=None)
def test_partition_is_valid_and_balanced(graph, num_parts, seed):
    num_parts = min(num_parts, graph.number_of_nodes())
    assignment = partition_graph(graph, num_parts, imbalance=0.3, seed=seed)
    assert is_valid_partition(graph, assignment, num_parts)
    weights = part_weights(graph, assignment, num_parts)
    # The documented guarantee: at most the balance cap plus one node, since a
    # node is never split across parts.
    limit = max(1.3 * graph.number_of_nodes() / num_parts, 1.0) + 1.0
    assert max(weights.values()) <= limit + 1e-9


@given(weighted_graphs(), st.integers(min_value=0, max_value=999))
@settings(max_examples=30, deadline=None)
def test_bisection_cut_never_exceeds_total_weight(graph, seed):
    assignment = partition_graph(graph, min(2, graph.number_of_nodes()), seed=seed)
    total = sum(d["weight"] for _, _, d in graph.edges(data=True))
    assert 0 <= edge_cut(graph, assignment) <= total


# ----------------------------------------------------------------------
# Community detection invariants
# ----------------------------------------------------------------------


@given(weighted_graphs(), st.integers(min_value=0, max_value=999))
@settings(max_examples=30, deadline=None)
def test_louvain_communities_partition_nodes(graph, seed):
    communities = louvain_communities(graph, seed=seed)
    union = set()
    total = 0
    for community in communities:
        union |= community
        total += len(community)
    assert union == set(graph.nodes())
    assert total == graph.number_of_nodes()


@given(weighted_graphs(), st.integers(min_value=0, max_value=999))
@settings(max_examples=30, deadline=None)
def test_louvain_modularity_at_least_singletons(graph, seed):
    communities = louvain_communities(graph, seed=seed)
    if graph.number_of_edges() == 0:
        return
    singleton = modularity(graph, [{node} for node in graph.nodes()])
    assert modularity(graph, communities) >= singleton - 1e-9


# ----------------------------------------------------------------------
# Remote DAG and scheduler invariants
# ----------------------------------------------------------------------


@given(circuits(), st.integers(min_value=2, max_value=4))
@settings(max_examples=30, deadline=None)
def test_remote_dag_counts_cross_partition_gates(circuit, num_qpus):
    mapping = {q: q % num_qpus for q in range(circuit.num_qubits)}
    dag = RemoteDAG(circuit, mapping)
    expected = sum(
        1
        for gate in circuit.gates
        if gate.is_two_qubit and mapping[gate.qubits[0]] != mapping[gate.qubits[1]]
    )
    assert dag.num_operations == expected
    # priorities are bounded by the DAG size
    assert all(0 <= op.priority < max(dag.num_operations, 1) or dag.num_operations == 0 for op in dag)


@given(allocation_problems(max_capacity=12), st.integers(min_value=0, max_value=999))
@settings(max_examples=60, deadline=None)
def test_all_schedulers_respect_capacity(problem, rng_seed):
    """Eq. 8: every policy's allocation is feasible for arbitrary request sets
    and capacities, including the redundancy-capped CloudQC variants."""
    requests, capacity = problem
    rng = np.random.default_rng(rng_seed)
    for scheduler in (
        CloudQCScheduler(),
        CloudQCScheduler(max_redundancy=1),
        CloudQCScheduler(max_redundancy=3),
        GreedyScheduler(),
        AverageScheduler(),
        RandomScheduler(),
    ):
        allocation = scheduler.allocate(requests, capacity, rng=rng)
        assert is_feasible(requests, allocation, capacity)
        assert all(amount >= 1 for amount in allocation.values())
        assert set(allocation) <= {request.op_id for request in requests}


@given(st.integers(min_value=0, max_value=50))
@settings(max_examples=20, deadline=None)
def test_same_qpu_allocation_requests_always_rejected(qpu):
    with pytest.raises(ValueError):
        AllocationRequest(op_id=("job", 0), qpu_a=qpu, qpu_b=qpu)


@given(allocation_problems())
@settings(max_examples=40, deadline=None)
def test_cloudqc_starvation_freedom(problem):
    """If an op could get one pair given the full capacity, CloudQC never grants
    redundancy to another op while starving it completely beyond capacity limits."""
    requests, capacity = problem
    allocation = CloudQCScheduler().allocate(requests, capacity)
    granted = {op for op, amount in allocation.items() if amount >= 1}
    for request in requests:
        if request.op_id in granted:
            continue
        # A skipped op must be blocked by capacity already consumed by others
        # holding at most... nothing stronger can be asserted than feasibility of
        # adding one more pair being impossible.
        usage_a = sum(
            allocation.get(r.op_id, 0)
            for r in requests
            if request.qpu_a in (r.qpu_a, r.qpu_b)
        )
        usage_b = sum(
            allocation.get(r.op_id, 0)
            for r in requests
            if request.qpu_b in (r.qpu_a, r.qpu_b)
        )
        assert (
            usage_a >= capacity.get(request.qpu_a, 0)
            or usage_b >= capacity.get(request.qpu_b, 0)
        )


# ----------------------------------------------------------------------
# Topology invariants
# ----------------------------------------------------------------------


@given(
    st.integers(min_value=2, max_value=15),
    st.floats(min_value=0.05, max_value=0.9),
    st.integers(min_value=0, max_value=999),
)
@settings(max_examples=30, deadline=None)
def test_random_topology_connected_and_metric(num_qpus, probability, seed):
    topology = CloudTopology.random(num_qpus, probability, seed=seed)
    assert nx.is_connected(topology.graph)
    # Distances satisfy the triangle inequality on a few sampled triples.
    ids = topology.qpu_ids
    rng = np.random.default_rng(seed)
    for _ in range(5):
        a, b, c = rng.choice(ids, size=3)
        assert topology.distance(int(a), int(c)) <= topology.distance(
            int(a), int(b)
        ) + topology.distance(int(b), int(c))
