"""Tests for the circuit dependency DAG and front-layer logic."""

import pytest

from repro.circuits import CircuitDAG, QuantumCircuit


class TestDagStructure:
    def test_chain_dependencies(self, bell_circuit):
        dag = CircuitDAG(bell_circuit)
        assert dag.predecessors(1) == {0}
        assert dag.successors(0) == {1}

    def test_independent_gates_have_no_edges(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.h(1)
        dag = CircuitDAG(circuit)
        assert dag.predecessors(0) == set()
        assert dag.predecessors(1) == set()

    def test_node_count_matches_gates(self, vqe_like_circuit):
        assert len(CircuitDAG(vqe_like_circuit)) == vqe_like_circuit.num_gates

    def test_two_qubit_gate_depends_on_both_operands(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)          # 0
        circuit.h(1)          # 1
        circuit.cx(0, 1)      # 2
        dag = CircuitDAG(circuit)
        assert dag.predecessors(2) == {0, 1}


class TestFrontLayer:
    def test_initial_front_layer_fig1(self, vqe_like_circuit):
        # The first three H gates (on q0, q2, q3) have no predecessors.
        dag = CircuitDAG(vqe_like_circuit)
        front = dag.front_layer()
        front_gates = {dag.gate(i).qubits for i in front}
        assert (0,) in front_gates and (2,) in front_gates and (3,) in front_gates

    def test_front_layer_advances_with_execution(self, bell_circuit):
        dag = CircuitDAG(bell_circuit)
        assert dag.front_layer() == [0]
        assert dag.front_layer(executed=[0]) == [1]
        assert dag.front_layer(executed=[0, 1]) == []


class TestOrdering:
    def test_topological_order_respects_dependencies(self, vqe_like_circuit):
        dag = CircuitDAG(vqe_like_circuit)
        order = dag.topological_order()
        position = {node: i for i, node in enumerate(order)}
        for node in dag:
            for pred in node.predecessors:
                assert position[pred] < position[node.index]

    def test_layers_cover_all_gates(self, vqe_like_circuit):
        dag = CircuitDAG(vqe_like_circuit)
        layers = dag.layers()
        flattened = [g for layer in layers for g in layer]
        assert sorted(flattened) == list(range(vqe_like_circuit.num_gates))

    def test_longest_path_equals_depth(self, chain_circuit):
        dag = CircuitDAG(chain_circuit)
        assert dag.longest_path_length() == chain_circuit.depth()

    def test_critical_path_is_a_dependency_chain(self, chain_circuit):
        dag = CircuitDAG(chain_circuit)
        path = dag.critical_path()
        assert len(path) == dag.longest_path_length()
        for earlier, later in zip(path, path[1:]):
            assert later in dag.successors(earlier)


class TestClosure:
    def test_closure_skips_local_intermediates(self):
        # cx(0,1) -> h(1) -> cx(1,2): the two CX gates are transitively ordered.
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)   # 0
        circuit.h(1)       # 1
        circuit.cx(1, 2)   # 2
        dag = CircuitDAG(circuit)
        closure = dag.subgraph_closure([0, 2])
        assert closure[2] == {0}
        assert closure[0] == set()

    def test_closure_of_independent_gates_is_empty(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cx(2, 3)
        dag = CircuitDAG(circuit)
        closure = dag.subgraph_closure([0, 1])
        assert closure[0] == set()
        assert closure[1] == set()

    def test_to_networkx_is_acyclic(self, vqe_like_circuit):
        import networkx as nx

        graph = CircuitDAG(vqe_like_circuit).to_networkx()
        assert nx.is_directed_acyclic_graph(graph)

    def test_two_qubit_nodes(self, vqe_like_circuit):
        dag = CircuitDAG(vqe_like_circuit)
        nodes = dag.two_qubit_nodes()
        assert all(dag.gate(i).is_two_qubit for i in nodes)
        assert len(nodes) == vqe_like_circuit.num_two_qubit_gates
