"""Golden A/B tests: lazy trace replay is bit-identical to upfront submission.

The tentpole guarantee of the trace-ingestion layer: feeding
``run_stream(trace=...)`` lazily through the pending-arrival cursor produces
exactly the results of the equivalent upfront ``run_stream(circuits,
arrival_times)`` -- across all four network schedulers, in default and
preemption-active (deadline-rescue) configurations, with and without a
``Telemetry`` sink, from in-memory records and from on-disk jsonl/CSV files.
Also pins the ``run_stream``/``run_batch`` input-validation bugfix.
"""

from __future__ import annotations

import io
import itertools
import json

import numpy as np
import pytest

from repro.circuits.library import ghz, ising
from repro.cloud import CloudTopology, QuantumCloud
from repro.cloud import job as job_module
from repro.multitenant import (
    ClusterSimulationError,
    DeadlineRescue,
    MultiTenantSimulator,
    QueueingDeadline,
    Telemetry,
    TraceReader,
    TraceRecord,
    fifo_batch_manager,
    generate_anchor_burst_trace,
    generate_cluster_trace,
    trace_arrivals,
)
from repro.placement import CloudQCPlacement
from repro.scheduling import (
    AverageScheduler,
    CloudQCScheduler,
    GreedyScheduler,
    RandomScheduler,
)

SCHEDULERS = [
    CloudQCScheduler,
    GreedyScheduler,
    AverageScheduler,
    RandomScheduler,
]

GOLDEN_CIRCUITS = ["ghz_n24", "ising_n34", "ghz_n16", "ghz_n24"]
GOLDEN_ARRIVALS = [0.0, 11.0, 25.0, 40.0]
GOLDEN_TENANTS = ["a", "b", "a", "c"]


def result_key(result):
    return (
        result.job_id,
        result.circuit_name,
        result.arrival_time,
        result.placement_time,
        result.completion_time,
        result.num_remote_operations,
        result.num_qpus_used,
        result.outcome,
        result.num_preemptions,
        result.num_migrations,
        result.wasted_time,
        result.wasted_ops,
    )


def small_cloud():
    return QuantumCloud(
        CloudTopology.line(4),
        computing_qubits_per_qpu=16,
        communication_qubits_per_qpu=4,
        epr_success_probability=0.9,
    )


def make_simulator(scheduler_cls, admission_policy=None, preemption_policy=None):
    # Realign the process-global job counter so comparable runs mint
    # identical job ids (scheduler tiebreaks read the id strings).
    job_module._job_counter = itertools.count()
    return MultiTenantSimulator(
        small_cloud(),
        placement_algorithm=CloudQCPlacement(),
        network_scheduler=scheduler_cls(),
        batch_manager=fifo_batch_manager(),
        admission_policy=admission_policy,
        preemption_policy=preemption_policy,
    )


def golden_records():
    return [
        TraceRecord(arrival_time=arrival, circuit=name, tenant=tenant)
        for arrival, name, tenant in zip(
            GOLDEN_ARRIVALS, GOLDEN_CIRCUITS, GOLDEN_TENANTS
        )
    ]


def run_upfront(scheduler_cls, telemetry=None, keep_results=True, **sim_kwargs):
    simulator = make_simulator(scheduler_cls, **sim_kwargs)
    return simulator.run_stream(
        [ghz(24), ising(34), ghz(16), ghz(24)],
        GOLDEN_ARRIVALS,
        seed=7,
        telemetry=telemetry,
        keep_results=keep_results,
        tenants=GOLDEN_TENANTS,
    )


def run_lazy(scheduler_cls, trace=None, telemetry=None, keep_results=True, **sim_kwargs):
    simulator = make_simulator(scheduler_cls, **sim_kwargs)
    return simulator.run_stream(
        trace=golden_records() if trace is None else trace,
        seed=7,
        telemetry=telemetry,
        keep_results=keep_results,
    )


# ----------------------------------------------------------------------
# The tentpole: lazy == upfront, bit for bit
# ----------------------------------------------------------------------
class TestStreamingEquivalence:
    @pytest.mark.parametrize("scheduler_cls", SCHEDULERS)
    def test_default_config(self, scheduler_cls):
        upfront = run_upfront(scheduler_cls)
        lazy = run_lazy(scheduler_cls)
        assert [result_key(r) for r in upfront] == [result_key(r) for r in lazy]

    @pytest.mark.parametrize("scheduler_cls", SCHEDULERS)
    def test_deadline_rescue_config(self, scheduler_cls):
        # Preemption-active: a queueing deadline plus DeadlineRescue, on the
        # anchor-burst overload trace that actually triggers evictions.
        trace = generate_anchor_burst_trace(cycles=4, fillers_per_cycle=6)
        kwargs = dict(
            admission_policy=QueueingDeadline(30.0),
            preemption_policy=DeadlineRescue(horizon=5.0),
        )
        simulator = make_simulator(scheduler_cls, **kwargs)
        upfront = simulator.run_stream(
            trace.circuits, trace.arrival_times, seed=7, tenants=trace.tenant_ids
        )
        simulator = make_simulator(scheduler_cls, **kwargs)
        lazy = simulator.run_stream(trace=trace, seed=7)
        assert any(r.num_preemptions > 0 for r in upfront)  # the config bites
        assert [result_key(r) for r in upfront] == [result_key(r) for r in lazy]

    @pytest.mark.parametrize("scheduler_cls", SCHEDULERS)
    def test_with_telemetry_sink_and_event_stream(self, scheduler_cls):
        upfront_events = io.StringIO()
        upfront = run_upfront(scheduler_cls, telemetry=Telemetry(events=upfront_events))
        lazy_events = io.StringIO()
        lazy = run_lazy(scheduler_cls, telemetry=Telemetry(events=lazy_events))
        assert [result_key(r) for r in upfront] == [result_key(r) for r in lazy]
        # The jsonl event streams -- arrivals, admissions, placements,
        # completions, tenants and all -- must match byte for byte.
        assert upfront_events.getvalue() == lazy_events.getvalue()

    def test_bounded_memory_mode_summaries_match(self):
        upfront_sink = Telemetry()
        run_upfront(CloudQCScheduler, telemetry=upfront_sink, keep_results=False)
        lazy_sink = Telemetry()
        assert run_lazy(CloudQCScheduler, telemetry=lazy_sink, keep_results=False) == []
        assert upfront_sink.summary() == lazy_sink.summary()

    @pytest.mark.parametrize("suffix", ["jsonl", "csv"])
    def test_replay_from_disk(self, suffix, tmp_path):
        from repro.multitenant import write_trace

        path = tmp_path / f"golden.{suffix}"
        write_trace(path, golden_records())
        upfront = run_upfront(CloudQCScheduler)
        lazy = run_lazy(CloudQCScheduler, trace=str(path))
        assert [result_key(r) for r in upfront] == [result_key(r) for r in lazy]

    def test_replay_synthetic_cluster_trace(self):
        # A denser workload than the 4-job golden stream: 150 jobs with
        # queueing expiries in the mix, replayed through a ClusterTrace.
        trace = generate_cluster_trace(
            150, num_tenants=12, seed=5, names=["ghz_n4", "ghz_n8", "ghz_n16"]
        )
        kwargs = dict(admission_policy=QueueingDeadline(120.0))
        simulator = make_simulator(CloudQCScheduler, **kwargs)
        upfront = simulator.run_stream(
            trace.circuits, trace.arrival_times, seed=11, tenants=trace.tenant_ids
        )
        simulator = make_simulator(CloudQCScheduler, **kwargs)
        lazy = simulator.run_stream(trace=trace, seed=11)
        assert [result_key(r) for r in upfront] == [result_key(r) for r in lazy]

    def test_rebasing_reader_matches_trace_arrivals(self, tmp_path):
        from repro.multitenant import write_trace

        # Raw epoch-style timestamps; both paths compress them 10x onto t=0.
        raw = [1_700_000_000.0 + 40.0 * i for i in range(4)]
        path = tmp_path / "raw.jsonl"
        write_trace(
            path,
            [
                TraceRecord(arrival_time=ts, circuit=name, tenant=tenant)
                for ts, name, tenant in zip(raw, GOLDEN_CIRCUITS, GOLDEN_TENANTS)
            ],
        )
        rebased = trace_arrivals(raw, start=0.0, time_scale=0.1)
        simulator = make_simulator(CloudQCScheduler)
        upfront = simulator.run_stream(
            [ghz(24), ising(34), ghz(16), ghz(24)], rebased, seed=7
        )
        simulator = make_simulator(CloudQCScheduler)
        lazy = simulator.run_stream(
            trace=TraceReader(path, start=0.0, time_scale=0.1), seed=7
        )
        assert [result_key(r) for r in upfront] == [result_key(r) for r in lazy]

    def test_event_counts_match(self):
        # The cursor replaces n upfront arrival events with n cursor firings,
        # so a max_events budget that fits the upfront run fits the lazy run.
        simulator = make_simulator(CloudQCScheduler)
        upfront = simulator.run_stream(
            [ghz(24), ising(34), ghz(16), ghz(24)], GOLDEN_ARRIVALS, seed=7
        )
        budget = 10_000
        job_module._job_counter = itertools.count()
        tight = MultiTenantSimulator(
            small_cloud(),
            placement_algorithm=CloudQCPlacement(),
            network_scheduler=CloudQCScheduler(),
            batch_manager=fifo_batch_manager(),
            max_events=budget,
        )
        lazy = tight.run_stream(trace=golden_records(), seed=7)
        assert [result_key(r) for r in upfront] == [result_key(r) for r in lazy]


# ----------------------------------------------------------------------
# Lazy-path input validation
# ----------------------------------------------------------------------
class TestLazyValidation:
    def test_trace_mutually_exclusive_with_circuits(self):
        simulator = make_simulator(CloudQCScheduler)
        with pytest.raises(ValueError, match="mutually exclusive"):
            simulator.run_stream(
                [ghz(4)], [0.0], trace=golden_records()
            )

    def test_trace_mutually_exclusive_with_tenants(self):
        simulator = make_simulator(CloudQCScheduler)
        with pytest.raises(ValueError, match="tenants"):
            simulator.run_stream(trace=golden_records(), tenants=["a"])

    def test_missing_both_forms(self):
        simulator = make_simulator(CloudQCScheduler)
        with pytest.raises(ValueError, match="requires circuits"):
            simulator.run_stream()

    def test_keep_results_false_requires_sink(self):
        simulator = make_simulator(CloudQCScheduler)
        with pytest.raises(ValueError, match="telemetry sink"):
            simulator.run_stream(trace=golden_records(), keep_results=False)

    def test_trace_format_only_for_paths(self):
        simulator = make_simulator(CloudQCScheduler)
        with pytest.raises(ValueError, match="trace_format"):
            simulator.run_stream(trace=golden_records(), trace_format="jsonl")
        with pytest.raises(ValueError, match="trace_format"):
            simulator.run_stream([ghz(4)], [0.0], trace_format="jsonl")

    def test_unsorted_records_raise_with_index(self):
        records = [
            TraceRecord(5.0, "ghz_n4"),
            TraceRecord(1.0, "ghz_n4"),
        ]
        simulator = make_simulator(CloudQCScheduler)
        with pytest.raises(ValueError, match="record #1"):
            simulator.run_stream(trace=records, seed=7)

    def test_negative_arrival_rejected(self):
        simulator = make_simulator(CloudQCScheduler)
        with pytest.raises(ValueError, match="negative"):
            simulator.run_stream(trace=[TraceRecord(-1.0, "ghz_n4")], seed=7)

    def test_oversized_circuit_rejected_with_capacity_message(self):
        simulator = make_simulator(CloudQCScheduler)
        with pytest.raises(ClusterSimulationError, match="ghz_n120 needs 120"):
            simulator.run_stream(trace=[TraceRecord(0.0, "ghz_n120")], seed=7)

    def test_empty_trace_returns_empty(self):
        simulator = make_simulator(CloudQCScheduler)
        assert simulator.run_stream(trace=[], seed=7) == []


# ----------------------------------------------------------------------
# Regression: run_batch/run_stream length-mismatch validation (bugfix)
# ----------------------------------------------------------------------
class TestLengthMismatchRegression:
    def test_mismatched_arrival_times(self):
        simulator = make_simulator(CloudQCScheduler)
        with pytest.raises(ValueError, match="arrival_times must match"):
            simulator.run_stream([ghz(4), ghz(4)], [0.0])
        with pytest.raises(ValueError, match="arrival_times must match"):
            simulator.run_batch([ghz(4)], arrival_times=[0.0, 1.0])

    def test_empty_circuits_with_arrivals_no_longer_slips_through(self):
        # The old early return (`if not circuits: return []`) ran before the
        # pairing check, silently swallowing a non-empty arrival_times.
        simulator = make_simulator(CloudQCScheduler)
        with pytest.raises(ValueError, match="arrival_times must match"):
            simulator.run_batch([], arrival_times=[0.0, 1.0])
        with pytest.raises(ValueError, match="arrival_times must match"):
            simulator.run_stream([], [0.0])

    def test_empty_circuits_with_tenants(self):
        simulator = make_simulator(CloudQCScheduler)
        with pytest.raises(ValueError, match="tenants must match"):
            simulator.run_batch([], tenants=["a"])

    def test_tenants_mismatch(self):
        simulator = make_simulator(CloudQCScheduler)
        with pytest.raises(ValueError, match="tenants must match"):
            simulator.run_stream([ghz(4)], [0.0], tenants=["a", "b"])

    def test_numpy_arrival_times_still_accepted(self):
        simulator = make_simulator(CloudQCScheduler)
        results = simulator.run_stream([ghz(4)], np.array([0.0]), seed=3)
        assert len(results) == 1
        with pytest.raises(ValueError, match="arrival_times must match"):
            simulator.run_stream([ghz(4)], np.array([0.0, 1.0]))

    def test_empty_batch_still_returns_empty(self):
        simulator = make_simulator(CloudQCScheduler)
        assert simulator.run_batch([]) == []
        assert simulator.run_batch([], arrival_times=[]) == []


# ----------------------------------------------------------------------
# Telemetry event-stream shape under lazy replay
# ----------------------------------------------------------------------
class TestLazyTelemetryEvents:
    def test_tenants_flow_from_records(self):
        events = io.StringIO()
        run_lazy(CloudQCScheduler, telemetry=Telemetry(events=events))
        arrived = [
            json.loads(line)
            for line in events.getvalue().splitlines()
            if json.loads(line).get("event") == "job_arrived"
        ]
        assert [event.get("tenant") for event in arrived] == GOLDEN_TENANTS
