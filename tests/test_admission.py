"""Tests for the admission-control policies and their simulator wiring."""

import math

import pytest

from repro.circuits.library import ghz
from repro.cloud import CloudTopology, Job, QuantumCloud
from repro.multitenant import (
    AdmissionPolicy,
    AdmitAll,
    JobOutcome,
    MultiTenantSimulator,
    QueueDepthThreshold,
    QueueingDeadline,
    TokenBucket,
    bursty_arrivals,
    fifo_batch_manager,
    max_queue_depth,
    poisson_arrivals,
    priority_batch_manager,
    uniform_arrivals,
)
from repro.placement import CloudQCPlacement
from repro.scheduling import CloudQCScheduler


def make_simulator(cloud, batch_manager=None, **kwargs):
    return MultiTenantSimulator(
        cloud,
        placement_algorithm=CloudQCPlacement(),
        network_scheduler=CloudQCScheduler(),
        batch_manager=batch_manager or priority_batch_manager(),
        **kwargs,
    )


def contended_cloud(epr_success_probability=1.0):
    """Two QPUs that can hold one 24-qubit job plus one small job."""
    topology = CloudTopology.line(2)
    return QuantumCloud(
        topology,
        computing_qubits_per_qpu=16,
        communication_qubits_per_qpu=2,
        epr_success_probability=epr_success_probability,
    )


def job(num_qubits=4, arrival_time=0.0):
    return Job(circuit=ghz(num_qubits), arrival_time=arrival_time)


class RejectEverything(AdmissionPolicy):
    name = "reject-everything"

    def admit(self, job, now, queue_depth):
        return False


class TestPolicyUnits:
    def test_admit_all_admits(self):
        policy = AdmitAll()
        assert policy.admit(job(), 0.0, 10_000)
        assert policy.queueing_deadline(job()) is None

    def test_queue_depth_threshold_boundary(self):
        policy = QueueDepthThreshold(max_depth=3)
        assert policy.admit(job(), 0.0, 0)
        assert policy.admit(job(), 0.0, 2)
        assert not policy.admit(job(), 0.0, 3)
        assert not policy.admit(job(), 0.0, 50)

    def test_queue_depth_threshold_validation(self):
        with pytest.raises(ValueError):
            QueueDepthThreshold(0)
        with pytest.raises(ValueError):
            QueueDepthThreshold(-2)

    def test_token_bucket_consumes_and_refills(self):
        policy = TokenBucket(rate=0.1, capacity=2.0)
        assert policy.admit(job(), 0.0, 0)  # 2 -> 1 token
        assert policy.admit(job(), 0.0, 0)  # 1 -> 0 tokens
        assert not policy.admit(job(), 1.0, 0)  # refilled only 0.1
        assert policy.admit(job(), 11.0, 0)  # ~1.1 tokens accumulated

    def test_token_bucket_caps_at_capacity(self):
        policy = TokenBucket(rate=1.0, capacity=2.0)
        # A long idle period must not bank more than `capacity` admissions.
        assert policy.admit(job(), 1000.0, 0)
        assert policy.admit(job(), 1000.0, 0)
        assert not policy.admit(job(), 1000.0, 0)

    def test_token_bucket_reset_restores_a_full_bucket(self):
        policy = TokenBucket(rate=0.001, capacity=1.0)
        assert policy.admit(job(), 0.0, 0)
        assert not policy.admit(job(), 1.0, 0)
        policy.reset()
        assert policy.admit(job(), 0.0, 0)

    def test_token_bucket_validation(self):
        for rate, capacity in [(0.0, 5.0), (-1.0, 5.0), (math.nan, 5.0),
                               (1.0, 0.5), (1.0, math.inf)]:
            with pytest.raises(ValueError):
                TokenBucket(rate=rate, capacity=capacity)

    def test_queueing_deadline_is_relative_to_arrival(self):
        policy = QueueingDeadline(max_delay=50.0)
        assert policy.admit(job(), 0.0, 10_000)
        assert policy.queueing_deadline(job(arrival_time=30.0)) == 80.0

    def test_queueing_deadline_validation(self):
        for delay in [0.0, -1.0, math.nan, math.inf]:
            with pytest.raises(ValueError):
                QueueingDeadline(delay)


class TestRejectEverything:
    def test_all_jobs_rejected_and_sim_terminates(self, default_cloud):
        simulator = make_simulator(
            default_cloud, admission_policy=RejectEverything()
        )
        circuits = [ghz(8), ghz(16), ghz(24)]
        results = simulator.run_stream(circuits, [0.0, 5.0, 10.0], seed=1)
        assert len(results) == 3
        assert all(r.outcome == JobOutcome.REJECTED for r in results)
        assert all(not r.completed for r in results)
        assert all(math.isnan(r.placement_time) for r in results)
        assert all(math.isnan(r.completion_time) for r in results)
        assert all(math.isnan(r.job_completion_time) for r in results)
        assert all(math.isnan(r.queueing_delay) for r in results)
        # A rejection happens at the arrival instant.
        assert [r.dropped_time for r in results] == [0.0, 5.0, 10.0]


class TestQueueDepthIntegration:
    def test_burst_overload_above_threshold_sheds_load(self, default_cloud):
        # Six simultaneous arrivals against a depth-2 queue: the first two
        # are admitted (queue depth 0 and 1 at their arrival events), the
        # rest see a full queue and are rejected before any placement runs.
        simulator = make_simulator(
            default_cloud,
            fifo_batch_manager(),
            admission_policy=QueueDepthThreshold(max_depth=2),
        )
        circuits = [ghz(8)] * 6
        arrivals = bursty_arrivals(6, burst_size=6, burst_gap=0.0)
        results = simulator.run_stream(circuits, arrivals, seed=1)
        rejected = [r for r in results if r.outcome == JobOutcome.REJECTED]
        completed = [r for r in results if r.completed]
        assert len(rejected) == 4
        assert len(completed) == 2
        assert max_queue_depth(results) <= 2

    def test_no_shedding_when_under_threshold(self, default_cloud):
        simulator = make_simulator(
            default_cloud,
            fifo_batch_manager(),
            admission_policy=QueueDepthThreshold(max_depth=10),
        )
        circuits = [ghz(8), ghz(8), ghz(8)]
        results = simulator.run_stream(circuits, [0.0, 100.0, 200.0], seed=1)
        assert all(r.completed for r in results)


class TestDeadlineIntegration:
    def test_job_expires_at_exactly_the_deadline(self):
        # ghz(24) holds 24 of 32 qubits until t=23.1; the second ghz(24)
        # arrives at t=1 and cannot be placed, so a 10-unit deadline drops
        # it at t=11 with the advertised queueing delay.
        simulator = make_simulator(
            contended_cloud(),
            fifo_batch_manager(),
            admission_policy=QueueingDeadline(max_delay=10.0),
        )
        results = simulator.run_stream(
            [ghz(24), ghz(24)], arrival_times=[0.0, 1.0], seed=1
        )
        first, second = sorted(results, key=lambda r: r.arrival_time)
        assert first.completed
        assert second.outcome == JobOutcome.EXPIRED
        assert second.dropped_time == pytest.approx(11.0)
        assert second.queueing_delay == pytest.approx(10.0)
        assert math.isnan(second.completion_time)

    def test_generous_deadline_lets_the_job_run(self):
        simulator = make_simulator(
            contended_cloud(),
            fifo_batch_manager(),
            admission_policy=QueueingDeadline(max_delay=100.0),
        )
        results = simulator.run_stream(
            [ghz(24), ghz(24)], arrival_times=[0.0, 1.0], seed=1
        )
        assert all(r.completed for r in results)
        second = max(results, key=lambda r: r.arrival_time)
        assert second.queueing_delay <= 100.0

    def test_expiry_frees_the_queue_for_later_jobs(self):
        # The expired middle job must not block the third arrival.
        simulator = make_simulator(
            contended_cloud(),
            fifo_batch_manager(),
            admission_policy=QueueingDeadline(max_delay=5.0),
        )
        results = simulator.run_stream(
            [ghz(24), ghz(24), ghz(8)],
            arrival_times=[0.0, 1.0, 30.0],
            seed=1,
        )
        by_arrival = sorted(results, key=lambda r: r.arrival_time)
        assert by_arrival[0].completed
        assert by_arrival[1].outcome == JobOutcome.EXPIRED
        assert by_arrival[2].completed


class TestTokenBucketIntegration:
    def test_uniform_stream_faster_than_refill_alternates(self, default_cloud):
        simulator = make_simulator(
            default_cloud,
            fifo_batch_manager(),
            admission_policy=TokenBucket(rate=0.1, capacity=1.0),
        )
        circuits = [ghz(8)] * 4
        results = simulator.run_stream(
            circuits, uniform_arrivals(4, interval=5.0), seed=1
        )
        by_arrival = sorted(results, key=lambda r: r.arrival_time)
        outcomes = [r.outcome for r in by_arrival]
        assert outcomes == [
            JobOutcome.COMPLETED,
            JobOutcome.REJECTED,
            JobOutcome.COMPLETED,
            JobOutcome.REJECTED,
        ]

    def test_policy_state_resets_between_runs(self, default_cloud):
        simulator = make_simulator(
            default_cloud,
            fifo_batch_manager(),
            admission_policy=TokenBucket(rate=0.001, capacity=1.0),
        )
        for _ in range(2):
            results = simulator.run_stream(
                [ghz(8), ghz(8)], uniform_arrivals(2, interval=1.0), seed=1
            )
            by_arrival = sorted(results, key=lambda r: r.arrival_time)
            assert by_arrival[0].completed
            assert by_arrival[1].outcome == JobOutcome.REJECTED


class TestAdmitAllRegression:
    """AdmitAll (and the default, policy-less construction) must keep
    ``run_stream`` bit-identical to the pre-admission-control simulator.
    The pinned numbers were captured on the code before this subsystem
    existed."""

    def test_admit_all_matches_default_construction(self, default_cloud):
        circuits = [ghz(16), ghz(24), ghz(16)]
        arrivals = poisson_arrivals(3, rate=0.01, seed=5)
        baseline = make_simulator(default_cloud, fifo_batch_manager())
        explicit = make_simulator(
            default_cloud, fifo_batch_manager(), admission_policy=AdmitAll()
        )
        a = baseline.run_stream(circuits, arrivals, seed=2)
        b = explicit.run_stream(circuits, arrivals, seed=2)
        assert [
            (r.circuit_name, r.arrival_time, r.placement_time, r.completion_time)
            for r in a
        ] == [
            (r.circuit_name, r.arrival_time, r.placement_time, r.completion_time)
            for r in b
        ]

    def test_golden_stream_default_cloud(self):
        from repro.circuits.library import ising

        cloud = QuantumCloud.default(seed=7)
        simulator = make_simulator(cloud, fifo_batch_manager())
        results = simulator.run_stream(
            [ghz(24), ising(34), ghz(16)], [0.0, 40.0, 80.0], seed=2
        )
        got = [
            (
                r.circuit_name,
                r.arrival_time,
                r.placement_time,
                r.completion_time,
                r.num_remote_operations,
                r.num_qpus_used,
            )
            for r in results
        ]
        assert got == [
            ("ghz_n24", 0.0, 0.0, pytest.approx(23.1), 1, 2),
            ("ising_n34", 40.0, 40.0, pytest.approx(66.0), 2, 2),
            ("ghz_n16", 80.0, 80.0, pytest.approx(95.1), 0, 1),
        ]
        assert all(r.outcome == JobOutcome.COMPLETED for r in results)

    def test_golden_stream_contended_priority(self):
        cloud = contended_cloud(epr_success_probability=0.5)
        simulator = make_simulator(cloud, priority_batch_manager())
        arrivals = poisson_arrivals(4, rate=0.02, seed=9)
        results = simulator.run_stream(
            [ghz(24), ghz(16), ghz(24), ghz(8)], arrivals, seed=13
        )
        got = [
            (r.circuit_name, r.placement_time, r.completion_time)
            for r in results
        ]
        assert got == [
            ("ghz_n24", pytest.approx(164.4453786366743), pytest.approx(200.4453786366743)),
            ("ghz_n16", pytest.approx(200.4453786366743), pytest.approx(215.5453786366743)),
            ("ghz_n24", pytest.approx(236.17315062348837), pytest.approx(262.17315062348837)),
            ("ghz_n8", pytest.approx(286.1095769402868), pytest.approx(293.2095769402868)),
        ]
