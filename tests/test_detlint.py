"""Tests for the determinism & checkpoint-coverage linter (repro.lint).

Fixture files under ``tests/fixtures/detlint/`` carry ``# expect: RULE``
markers: the golden tests assert that the set of findings equals, line by
line, the set of markers -- so both false negatives (a marked line not
flagged) and false positives (an unmarked line flagged) fail.

Fixture sources are linted under a synthetic ``src/repro/...`` path:
the real fixture path lives under ``tests/``, which is on the DET002
clock allowlist and would silence that rule.
"""

import json
import re
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    LintConfig,
    diff_against_baseline,
    lint_paths,
    lint_source,
    load_baseline,
    main,
    parse_waivers,
    save_baseline,
    RULES,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "detlint"

EXPECT = re.compile(r"#\s*expect:\s*([A-Z]+\d+)")


def lint_fixture(name: str):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return lint_source(source, f"src/repro/{name}")


def expected_markers(name: str) -> Counter:
    """``(line, rule)`` multiset from the fixture's `# expect:` comments."""
    expected: Counter = Counter()
    source_lines = (FIXTURES / name).read_text(encoding="utf-8").splitlines()
    for line_no, line in enumerate(source_lines, 1):
        for rule in EXPECT.findall(line):
            expected[(line_no, rule)] += 1
    return expected


def found_markers(report) -> Counter:
    return Counter((f.line, f.rule) for f in report.findings)


# ----------------------------------------------------------------------
# Golden fixture tests: one positive + one negative file per rule.
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "fixture",
    [
        "det001_positive.py",
        "det002_positive.py",
        "det003_positive.py",
        "ckpt001_positive.py",
        "ckpt002_positive.py",
    ],
)
def test_positive_fixture_findings_match_markers(fixture):
    report = lint_fixture(fixture)
    assert found_markers(report) == expected_markers(fixture)
    assert report.findings, f"{fixture} must plant at least one violation"


@pytest.mark.parametrize(
    "fixture",
    [
        "det001_negative.py",
        "det002_negative.py",
        "det003_negative.py",
        "ckpt001_negative.py",
        "ckpt002_negative.py",
    ],
)
def test_negative_fixture_is_clean(fixture):
    report = lint_fixture(fixture)
    assert report.findings == []
    assert report.waived == []


def test_positive_fixtures_cover_their_rule():
    """Each positive fixture plants violations of the rule it is named for."""
    for rule in ("DET001", "DET002", "DET003", "CKPT001", "CKPT002"):
        report = lint_fixture(f"{rule.lower()}_positive.py")
        assert any(f.rule == rule for f in report.findings)


def test_det002_allowlist_silences_benchmarks_and_scripts():
    source = "import time\nnow = time.time()\n"
    assert lint_source(source, "src/repro/sim/clock.py").findings
    for exempt in ("benchmarks/bench_x.py", "scripts/run.py", "tests/test_x.py"):
        assert lint_source(source, exempt).findings == []


def test_unparseable_file_is_a_finding_not_a_crash():
    report = lint_source("def broken(:\n", "src/repro/broken.py")
    assert len(report.findings) == 1
    assert "does not parse" in report.findings[0].message


# ----------------------------------------------------------------------
# Waivers
# ----------------------------------------------------------------------
def test_waiver_fixture_suppression_and_meta_rules():
    report = lint_fixture("waivers_fixture.py")
    # The three ok-waived DET001s plus the reasonless one are all suppressed.
    assert Counter(f.rule for f in report.findings) == Counter(
        {"WVR001": 1, "WVR002": 1, "DET001": 1}
    )
    # Suppressed findings are recorded with the waiver's reason.
    assert len(report.waived) == 4
    reasons = {w["reason"] for w in report.waived if w["reason"]}
    assert any("seeded upstream" in reason for reason in reasons)
    # The unknown-rule waiver suppressed nothing: its DET001 survives.
    surviving_det = [f for f in report.findings if f.rule == "DET001"]
    assert "value_unknown" in surviving_det[0].snippet


def test_waiver_in_docstring_is_inert():
    source = '"""Docs mention # detlint: ignore[DET001] here."""\n'
    waivers, problems = parse_waivers(source.splitlines(), "x.py")
    assert waivers == {} and problems == []


def test_waiver_line_above_and_trailing_forms():
    above = (
        "import random\n"
        "# detlint: ignore[DET001] fixture reason\n"
        "x = random.random()\n"
    )
    assert lint_source(above, "src/repro/x.py").findings == []
    trailing = (
        "import random\n"
        "x = random.random()  # detlint: ignore[DET001] fixture reason\n"
    )
    assert lint_source(trailing, "src/repro/x.py").findings == []
    too_far = (
        "import random\n"
        "# detlint: ignore[DET001] fixture reason\n"
        "\n"
        "x = random.random()\n"
    )
    assert len(lint_source(too_far, "src/repro/x.py").findings) == 1


def test_waiver_does_not_suppress_other_rules():
    source = (
        "import random\n"
        "x = random.random()  # detlint: ignore[DET002] wrong rule named\n"
    )
    report = lint_source(source, "src/repro/x.py")
    assert [f.rule for f in report.findings] == ["DET001"]


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def _findings(source: str, path: str = "src/repro/x.py"):
    return lint_source(source, path).findings


def test_baseline_roundtrip_and_grandfathering(tmp_path):
    source = "import random\nx = random.random()\n"
    findings = _findings(source)
    baseline_path = tmp_path / "baseline.json"
    save_baseline(str(baseline_path), findings)
    baseline = load_baseline(str(baseline_path))
    assert baseline.size == 1
    new, old = diff_against_baseline(findings, baseline)
    assert new == [] and len(old) == 1


def test_baseline_survives_line_shifts_but_not_duplicates():
    source = "import random\nx = random.random()\n"
    baseline = Baseline()
    for finding in _findings(source):
        baseline.entries[(finding.rule, finding.path, finding.key)] += 1
    # Unrelated edits shift the finding's line: still grandfathered.
    shifted = "import random\n\n\n\nx = random.random()\n"
    new, old = diff_against_baseline(_findings(shifted), baseline)
    assert new == [] and len(old) == 1
    # A second identical violation exceeds the multiset budget.
    doubled = "import random\nx = random.random()\ny = 0\nx = random.random()\n"
    new, old = diff_against_baseline(_findings(doubled), baseline)
    assert len(new) == 1 and len(old) == 1


def test_baseline_rejects_wrong_schema(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "something-else"}))
    with pytest.raises(ValueError):
        load_baseline(str(bad))


# ----------------------------------------------------------------------
# CLI: exit codes, formats, planted violations of every rule.
# ----------------------------------------------------------------------
PLANTED = {
    "DET001": "import random\nx = random.random()\n",
    "DET002": "import time\nx = time.time()\n",
    "DET003": "x = sum({1.0, 2.0})\n",
    "CKPT001": (
        "class C:\n"
        "    def __init__(self):\n"
        "        self.a = 0\n"
        "        self.b = 0\n"
        "    def snapshot_state(self):\n"
        "        return {'a': self.a}\n"
        "    def restore_state(self, state):\n"
        "        self.a = state['a']\n"
    ),
    "CKPT002": (
        "class C:\n"
        "    def __init__(self):\n"
        "        self.a = 0\n"
        "    def snapshot_state(self):\n"
        "        return {'a': self.a, 'a2': self.a}\n"
        "    def restore_state(self, state):\n"
        "        self.a = state['a']\n"
    ),
}


@pytest.mark.parametrize("rule", sorted(PLANTED))
def test_cli_exits_nonzero_on_each_planted_rule(rule, tmp_path, capsys):
    target = tmp_path / "src" / "repro" / "planted.py"
    target.parent.mkdir(parents=True)
    target.write_text(PLANTED[rule])
    exit_code = main([str(target), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 1
    assert rule in {f["rule"] for f in payload["findings"]}


def test_cli_clean_tree_exits_zero(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n")
    assert main([str(target)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_write_baseline_then_pass(tmp_path, capsys):
    target = tmp_path / "src" / "repro" / "planted.py"
    target.parent.mkdir(parents=True)
    target.write_text(PLANTED["DET001"])
    baseline = tmp_path / "baseline.json"
    assert main([str(target), "--baseline", str(baseline), "--write-baseline"]) == 0
    assert main([str(target), "--baseline", str(baseline)]) == 0
    # A second violation is not absorbed by the one-entry baseline.
    target.write_text(PLANTED["DET001"] + "y = random.random()\n")
    assert main([str(target), "--baseline", str(baseline)]) == 1
    capsys.readouterr()


def test_cli_out_file_and_select(tmp_path, capsys):
    target = tmp_path / "src" / "repro" / "planted.py"
    target.parent.mkdir(parents=True)
    target.write_text(PLANTED["DET001"] + "import time\nz = time.time()\n")
    out = tmp_path / "report.json"
    exit_code = main(
        [str(target), "--format", "json", "--select", "DET002", "--out", str(out)]
    )
    assert exit_code == 1
    payload = json.loads(out.read_text())
    assert {f["rule"] for f in payload["findings"]} == {"DET002"}
    assert payload == json.loads(capsys.readouterr().out)


def test_cli_rules_catalog_lists_every_rule(capsys):
    assert main(["--rules"]) == 0
    out = capsys.readouterr().out
    for code in RULES:
        assert code in out


def test_module_entry_point_runs():
    result = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--rules"],
        cwd=str(REPO_ROOT),
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0
    assert "DET001" in result.stdout


# ----------------------------------------------------------------------
# Repo-wide guarantees (tier-1): the shipped tree lints clean, and
# checkpoint-coverage drift in Controller is caught.
# ----------------------------------------------------------------------
def test_shipped_tree_lints_clean():
    report = lint_paths([str(REPO_ROOT / "src" / "repro")], LintConfig())
    assert [f.format() for f in report.findings] == []
    assert report.files_checked > 50


def test_controller_attribute_drift_is_caught():
    """The PR-9 resume guarantee: a new Controller attribute that is not
    snapshotted (or excluded with a reason) must fail the lint."""
    controller_py = REPO_ROOT / "src" / "repro" / "cloud" / "controller.py"
    source = controller_py.read_text(encoding="utf-8")
    anchor = "self.jobs: Dict[str, Job] = {}"
    assert anchor in source
    injected = source.replace(anchor, anchor + "\n        self.scratch = {}")
    report = lint_source(injected, "src/repro/cloud/controller.py")
    assert any(
        f.rule == "CKPT001" and "scratch" in f.message for f in report.findings
    )
