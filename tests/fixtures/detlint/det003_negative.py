"""DET003 fixture: nothing here may be flagged.

Sorted/keyed iteration, list-based accumulation, and order-preserving
sinks over dict views are all order-stable.
"""


def ordered(items, weights):
    a = sum(weights[k] for k in sorted(weights))
    b = min(items)
    c = list(weights.keys())
    d = sorted(weights.items(), key=lambda kv: kv[0])
    return a, b, c, d


def list_accumulation(values):
    total = 0.0
    for v in values:
        total += v
    return total


def keyed_sort(items):
    return sorted(set(items), key=len)
