"""CKPT001 fixture: every line tagged with an expect-CKPT001 marker must be flagged."""


class MissingAttr:
    def __init__(self) -> None:
        self.kept = 0
        self.lost = 0.0  # expect: CKPT001

    def snapshot_state(self):
        return {"kept": self.kept}

    def restore_state(self, state):
        self.kept = state["kept"]


class BadExclude:
    _CHECKPOINT_EXCLUDE = {  # expect: CKPT001 (reason missing) # expect: CKPT001 (stale entry)
        "cache": "",
        "ghost": "never assigned anywhere",
    }

    def __init__(self) -> None:
        self.value = 1
        self.cache = {}

    def checkpoint_state(self):
        return {"value": self.value}

    def restore_state(self, state):
        self.value = state["value"]


class ExternalDrift:
    _CHECKPOINT_KEYS = ("jobs",)

    def __init__(self) -> None:
        self.jobs = {}
        self.scratch = []  # expect: CKPT001


class DataHolder:
    def __init__(self) -> None:
        self.seen = 0

    def _capture_state(self):
        return {"seen": self.seen}

    def mutate(self) -> None:
        self.extra = True  # expect: CKPT001
