"""CKPT001 fixture: nothing here may be flagged."""

from dataclasses import dataclass


class FullyCovered:
    _CHECKPOINT_EXCLUDE = {
        "_cache": "derived memo, rebuilt lazily after restore",
    }

    def __init__(self) -> None:
        self.count = 0
        self._offset = 0.0
        self._cache = {}

    def snapshot_state(self):
        return {"count": self.count, "offset": self._offset}

    def restore_state(self, state):
        self.count = state["count"]
        self._offset = state["offset"]
        self._cache = {}


class NestedKeys:
    def __init__(self) -> None:
        self.submitted = 0
        self.dropped = 0

    def checkpoint_state(self):
        return {"counters": {"submitted": self.submitted, "dropped": self.dropped}}

    def restore_state(self, state):
        counters = state["counters"]
        self.submitted = counters["submitted"]
        self.dropped = counters["dropped"]


@dataclass
class ExternalRecord:
    _CHECKPOINT_KEYS = ("name", "weight")

    name: str
    weight: float = 1.0


class NotParticipating:
    """No snapshot methods, no markers: CKPT001 does not apply."""

    def __init__(self) -> None:
        self.anything = object()
