"""Waiver fixture: waived findings, WVR001 and WVR002 cases.

Expected behavior (asserted by tests/test_detlint.py):

* lines tagged ``ok-waived``   -> suppressed, recorded in report.waived
* lines tagged ``bad-no-reason`` -> suppressed, but WVR001 at the waiver
* lines tagged ``bad-unknown`` -> WVR002 at the waiver; DET001 survives
  because no *known* rule was named
"""

import random

# ok-waived (line-above form)
# detlint: ignore[DET001] fixture: seeded upstream by the harness
value_above = random.random()

value_trailing = random.random()  # detlint: ignore[DET001] fixture: trailing form  (ok-waived)

# bad-no-reason
# detlint: ignore[DET001]
value_no_reason = random.random()

# bad-unknown
# detlint: ignore[NOPE123] typo'd rule code
value_unknown = random.random()


def docstring_examples_are_inert():
    """Mentioning ``# detlint: ignore[DET001] ...`` in prose is not a waiver."""
    return random.random()  # detlint: ignore[DET001,DET002] fixture: multi-rule waiver  (ok-waived)
