"""CKPT002 fixture: nothing here may be flagged."""


class Symmetric:
    def __init__(self) -> None:
        self.a = 0
        self.b = 0.0

    def snapshot_state(self):
        return {"a": self.a, "b": self.b}

    def restore_state(self, state):
        self.a = state["a"]
        self.b = state.get("b", 0.0)


class PrivateCapturePair:
    """Private split-capture protocols are CKPT001 territory only: the
    restore side may be split across helpers, so key symmetry is not
    checkable method-pair-wise."""

    def __init__(self) -> None:
        self.seen = 0

    def _capture_state(self):
        return {"seen": self.seen, "engine": None}

    def _restore_state(self, state):
        self.seen = state["seen"]


class SnapshotOnly:
    def __init__(self) -> None:
        self.x = 1

    def snapshot_state(self):
        return {"x": self.x}
