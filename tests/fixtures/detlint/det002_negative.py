"""DET002 fixture: nothing here may be flagged.

Simulation time comes from the event loop, not the host clock; the names
below shadow or merely resemble banned calls without being them.
"""

import time


def simulated_now(loop) -> float:
    return loop.now


def sleep_budget() -> float:
    # time.sleep is not a nondeterminism *source* (it returns None).
    time.sleep(0)
    return 0.0


class Clock:
    def time(self) -> float:
        return 0.0


def read(clock: Clock) -> float:
    return clock.time()
