"""CKPT002 fixture: every line tagged with an expect-CKPT002 marker must be flagged."""


class SavedNeverRestored:
    def __init__(self) -> None:
        self.a = 0
        self.b = 0

    def snapshot_state(self):  # expect: CKPT002  ('b' written, never read)
        return {"a": self.a, "b": self.b}

    def restore_state(self, state):
        self.a = state["a"]
        self.b = 0


class ReadNeverSaved:
    def __init__(self) -> None:
        self.a = 0
        self.b = 0  # expect: CKPT001

    def checkpoint_state(self):
        return {"a": self.a}

    def restore_state(self, state):  # expect: CKPT002  ('b' read, never written)
        self.a = state["a"]
        self.b = state.get("b", 0)
