"""DET003 fixture: every line tagged with an expect-DET003 marker must be flagged."""


def set_sinks(items, weights):
    a = sum({w for w in weights})  # expect: DET003
    b = min(set(items))  # expect: DET003
    c = max(frozenset(items))  # expect: DET003
    d = list({1, 2, 3})  # expect: DET003
    e = sorted(set(items) | set(weights))  # expect: DET003
    return a, b, c, d, e


def dict_view_sum(weights):
    return sum(weights.values())  # expect: DET003


def loop_accumulation(weights, items):
    total = 0.0
    for w in weights.values():
        total += w  # expect: DET003
    for x in set(items):
        total += x * 2.0  # expect: DET003
    return total
