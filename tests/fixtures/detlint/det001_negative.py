"""DET001 fixture: nothing here may be flagged (all RNG use is seeded)."""

import random
import numpy as np
from numpy.random import default_rng

rng = np.random.default_rng(42)
rng_kw = default_rng(seed=42)
local = random.Random(7)
legacy = np.random.RandomState(3)


def draw(generator: np.random.Generator):
    a = local.random()
    b = generator.integers(10)
    local.shuffle([1, 2, 3])
    return a, b


class Sampler:
    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)

    def sample(self):
        return self.rng.random()
