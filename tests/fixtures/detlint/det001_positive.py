"""DET001 fixture: every line tagged with an expect-DET001 marker must be flagged."""

import random
import numpy as np
from numpy.random import default_rng
from random import randint as pick

rng_no_seed = np.random.default_rng()  # expect: DET001
rng_none = default_rng(None)  # expect: DET001
shared = random.Random()  # expect: DET001
legacy = np.random.RandomState()  # expect: DET001


def draw():
    a = random.random()  # expect: DET001
    b = random.randint(0, 10)  # expect: DET001
    c = pick(0, 10)  # expect: DET001
    d = np.random.normal()  # expect: DET001
    np.random.seed(7)  # expect: DET001
    random.shuffle([1, 2, 3])  # expect: DET001
    return a, b, c, d
