"""DET002 fixture: every line tagged with an expect-DET002 marker must be flagged."""

import os
import time
import uuid
import datetime
from time import perf_counter
from datetime import datetime as dt

now = time.time()  # expect: DET002
tick = perf_counter()  # expect: DET002
mono = time.monotonic()  # expect: DET002
stamp = datetime.datetime.now()  # expect: DET002
stamp2 = dt.utcnow()  # expect: DET002
today = datetime.date.today()  # expect: DET002
token = os.urandom(16)  # expect: DET002
ident = uuid.uuid4()  # expect: DET002
