"""Property tests: resuming from any snapshot is bit-identical to the
uninterrupted run, across schedulers, with preemption and chaos active."""

import json
import os
import shutil

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.cloud.job as job_module
import repro.multitenant.cluster_sim as cluster_sim
from repro.cloud import CloudTopology, QuantumCloud
from repro.multitenant import (
    ChaosSpec,
    CheckpointConfig,
    DeadlineRescue,
    FaultInjector,
    MultiTenantSimulator,
    QuantileSketch,
    QueueingDeadline,
    Telemetry,
    generate_anchor_burst_trace,
    generate_fleet_events,
    write_trace,
)
from repro.multitenant.telemetry import _DepthSeries
from repro.placement import CloudQCPlacement
from repro.scheduling import (
    AverageScheduler,
    CloudQCScheduler,
    GreedyScheduler,
    RandomScheduler,
)

SCHEDULERS = [
    CloudQCScheduler,
    GreedyScheduler,
    AverageScheduler,
    RandomScheduler,
]


def canonical(results):
    """NaN-safe, field-complete comparison key for a result list."""
    return [repr(sorted(r.__dict__.items())) for r in results]


class _Scenario:
    """One workload, run uninterrupted and checkpointed, snapshots kept.

    Built lazily once per parameter set and cached for the module, so the
    hypothesis examples only pay for the resume they exercise.
    """

    def __init__(self, tmp_dir, scheduler, chaos):
        self.dir = tmp_dir
        self.scheduler = scheduler
        self.chaos = chaos
        self.trace_path = os.path.join(tmp_dir, "trace.jsonl")
        self.events_path = os.path.join(tmp_dir, "events.jsonl") if chaos else None
        self.topology = CloudTopology.random(
            num_qpus=4, edge_probability=0.6, seed=2
        )
        write_trace(
            self.trace_path,
            generate_anchor_burst_trace(
                3, 5, num_qpus=4, anchor="ghz_n24", filler="ghz_n5"
            ).iter_records(),
        )

        baseline_events = os.path.join(tmp_dir, "events_base.jsonl")
        self.baseline = self._run(events_path=baseline_events)

        self.snapshots = []
        snap_path = os.path.join(tmp_dir, "snap.json")
        original_write = cluster_sim.write_snapshot

        def keep_copy(path, fingerprint, state):
            size = original_write(path, fingerprint, state)
            copy = os.path.join(tmp_dir, f"snap_{len(self.snapshots)}.json")
            shutil.copy(path, copy)
            self.snapshots.append(copy)
            return size

        cluster_sim.write_snapshot = keep_copy
        try:
            self.checkpointed = self._run(
                checkpoint=CheckpointConfig(path=snap_path, every_jobs=4),
                events_path=self.events_path,
            )
        finally:
            cluster_sim.write_snapshot = original_write
        if self.events_path is not None:
            with open(self.events_path, "rb") as handle:
                self.full_events = handle.read()
            with open(baseline_events, "rb") as handle:
                assert self.full_events == handle.read()

    def _make_sim(self):
        cloud = QuantumCloud(self.topology, computing_qubits_per_qpu=10)
        kwargs = {}
        if self.chaos:
            events = generate_fleet_events(
                ChaosSpec(
                    duration=2000.0,
                    failure_rate=0.002,
                    drain_rate=0.001,
                    calibration_rate=0.002,
                ),
                qpu_ids=self.topology.qpu_ids,
                seed=5,
            )
            kwargs = dict(
                admission_policy=QueueingDeadline(60.0),
                preemption_policy=DeadlineRescue(horizon=5.0),
                fault_injector=FaultInjector(events),
            )
        return MultiTenantSimulator(
            cloud, CloudQCPlacement(), self.scheduler(), **kwargs
        )

    def _run(self, checkpoint=None, events_path=None):
        job_module.set_job_counter(0)
        telemetry = Telemetry(events=events_path) if self.chaos else None
        results = self._make_sim().run_stream(
            trace=self.trace_path,
            seed=9,
            telemetry=telemetry,
            checkpoint=checkpoint,
        )
        if telemetry is not None:
            telemetry.close()
        return canonical(results)

    def resume(self, snapshot_index):
        if self.events_path is not None:
            # The resumed run truncates the events file back to the
            # snapshot's durable offset; restore the full file first so
            # every index starts from the same on-disk state.
            with open(self.events_path, "wb") as handle:
                handle.write(self.full_events)
        job_module.set_job_counter(0)
        telemetry = Telemetry() if self.chaos else None
        results = self._make_sim().resume_stream(
            self.snapshots[snapshot_index], telemetry=telemetry
        )
        if telemetry is not None:
            telemetry.close()
        resumed = canonical(results)
        if self.events_path is not None:
            with open(self.events_path, "rb") as handle:
                assert handle.read() == self.full_events, (
                    "telemetry event bytes diverged after resume"
                )
        return resumed


_SCENARIOS = {}


def scenario(tmp_root, scheduler, chaos=False):
    key = (scheduler.__name__, chaos)
    if key not in _SCENARIOS:
        directory = os.path.join(
            tmp_root, f"{scheduler.__name__}_{'chaos' if chaos else 'plain'}"
        )
        os.makedirs(directory, exist_ok=True)
        _SCENARIOS[key] = _Scenario(directory, scheduler, chaos)
    return _SCENARIOS[key]


@pytest.fixture(scope="module")
def tmp_root(tmp_path_factory):
    return str(tmp_path_factory.mktemp("resume"))


class TestResumeBitIdentity:
    def test_checkpointing_does_not_change_results(self, tmp_root):
        for scheduler in SCHEDULERS:
            scn = scenario(tmp_root, scheduler)
            assert scn.checkpointed == scn.baseline, scheduler.__name__
            assert scn.snapshots  # cadence actually fired

    @settings(max_examples=12, deadline=None)
    @given(data=st.data())
    def test_resume_any_snapshot_any_scheduler(self, tmp_root, data):
        scheduler = data.draw(st.sampled_from(SCHEDULERS), label="scheduler")
        scn = scenario(tmp_root, scheduler)
        index = data.draw(
            st.integers(min_value=0, max_value=len(scn.snapshots) - 1),
            label="snapshot",
        )
        assert scn.resume(index) == scn.baseline

    @settings(max_examples=8, deadline=None)
    @given(data=st.data())
    def test_resume_under_chaos_with_telemetry(self, tmp_root, data):
        scn = scenario(tmp_root, CloudQCScheduler, chaos=True)
        index = data.draw(
            st.integers(min_value=0, max_value=len(scn.snapshots) - 1),
            label="snapshot",
        )
        assert scn.resume(index) == scn.baseline

    def test_sim_time_cadence(self, tmp_root, tmp_path):
        scn = scenario(tmp_root, CloudQCScheduler)
        snap = str(tmp_path / "snap.json")
        job_module.set_job_counter(0)
        results = scn._make_sim().run_stream(
            trace=scn.trace_path,
            seed=9,
            checkpoint=CheckpointConfig(path=snap, every_sim_time=40.0),
        )
        assert canonical(results) == scn.baseline
        assert os.path.exists(snap)
        job_module.set_job_counter(0)
        resumed = scn._make_sim().resume_stream(snap)
        assert canonical(resumed) == scn.baseline

    def test_resume_inherits_checkpoint_cadence(self, tmp_root):
        """A resumed run keeps snapshotting to the same path by default."""
        scn = scenario(tmp_root, CloudQCScheduler)
        snapshot = scn.snapshots[0]
        target = json.load(open(snapshot))["state"]["checkpoint"]["path"]
        before = os.path.getmtime(target)
        job_module.set_job_counter(0)
        scn._make_sim().resume_stream(snapshot)
        assert os.path.getmtime(target) >= before
        # and the refreshed snapshot is itself resumable
        job_module.set_job_counter(0)
        assert canonical(scn._make_sim().resume_stream(target)) == scn.baseline


# ----------------------------------------------------------------------
# Sketch / reservoir round-trip properties
# ----------------------------------------------------------------------


class TestSketchRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(
        before=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            max_size=120,
        ),
        after=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            max_size=120,
        ),
    )
    def test_quantile_sketch_roundtrip(self, before, after):
        direct = QuantileSketch(epsilon=0.01)
        source = QuantileSketch(epsilon=0.01)
        for value in before:
            direct.add(value)
            source.add(value)
        state = json.loads(json.dumps(source.checkpoint_state()))
        restored = QuantileSketch.from_state(state)
        for value in after:
            direct.add(value)
            restored.add(value)
        assert restored.size == direct.size
        assert restored.mean == direct.mean
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert restored.quantile(q) == direct.quantile(q)

    @settings(max_examples=40, deadline=None)
    @given(
        depths=st.lists(
            st.integers(min_value=0, max_value=50), min_size=1, max_size=200
        ),
        split=st.integers(min_value=0, max_value=200),
        capacity=st.integers(min_value=4, max_value=32),
    )
    def test_depth_series_roundtrip(self, depths, split, capacity):
        split = min(split, len(depths))
        direct = _DepthSeries(capacity)
        source = _DepthSeries(capacity)
        for i, depth in enumerate(depths[:split]):
            direct.observe(float(i), depth)
            source.observe(float(i), depth)
        state = json.loads(json.dumps(source.checkpoint_state()))
        restored = _DepthSeries.from_state(state)
        for i, depth in enumerate(depths[split:], split):
            direct.observe(float(i), depth)
            restored.observe(float(i), depth)
        assert restored.points() == direct.points()
        assert restored.current_max() == direct.current_max()
        assert restored.exact == direct.exact
