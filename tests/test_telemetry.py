"""Tests for the bounded-memory streaming telemetry subsystem.

Covers the GK quantile sketch (including Hypothesis property tests that pin
the documented rank-error bound across adversarial distributions), the
online queue-depth series, the event stream round trip, the sketch-backed
``StreamSummary.from_telemetry``, and -- most importantly -- golden A/B
tests that attaching a sink leaves every seeded run bit-identical across
all four schedulers, with ``telemetry=None`` runs unchanged from PR-5.
"""

from __future__ import annotations

import io
import itertools
import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.library import ghz, ising
from repro.cloud import CloudTopology, QuantumCloud
from repro.cloud import job as job_module
from repro.multitenant import (
    TELEMETRY_EVENTS,
    DeadlineRescue,
    MultiTenantSimulator,
    QuantileSketch,
    QueueingDeadline,
    StreamSummary,
    Telemetry,
    fifo_batch_manager,
    generate_anchor_burst_trace,
    iter_events,
    queue_depth_timeseries,
)
from repro.multitenant.telemetry import _DepthSeries
from repro.placement import CloudQCPlacement
from repro.scheduling import (
    AverageScheduler,
    CloudQCScheduler,
    GreedyScheduler,
    RandomScheduler,
)

SCHEDULERS = [
    CloudQCScheduler,
    GreedyScheduler,
    AverageScheduler,
    RandomScheduler,
]


def rank_error(sorted_data, estimate, percentile):
    """Relative rank distance between an estimate and the target rank."""
    n = len(sorted_data)
    lo = np.searchsorted(sorted_data, estimate, side="left")
    hi = np.searchsorted(sorted_data, estimate, side="right")
    target = percentile / 100.0 * n
    if lo <= target <= hi:
        return 0.0
    return min(abs(lo - target), abs(hi - target)) / n


def gk_bound(epsilon, n):
    """The documented worst-case relative rank error: (2 eps n + 1) / n."""
    return (2.0 * epsilon * n + 1.0) / n


# ----------------------------------------------------------------------
# QuantileSketch unit tests
# ----------------------------------------------------------------------
class TestQuantileSketch:
    def test_empty(self):
        sketch = QuantileSketch()
        assert sketch.count == 0
        assert sketch.quantile(0.5) == 0.0
        assert sketch.mean == 0.0

    def test_single_value(self):
        sketch = QuantileSketch()
        sketch.add(7.0)
        for p in (0, 1, 50, 99, 100):
            assert sketch.percentile(p) == 7.0
        assert sketch.min == 7.0 and sketch.max == 7.0
        assert sketch.mean == 7.0 and sketch.sum == 7.0

    def test_exact_side_stats(self):
        values = [5.0, -2.0, 9.5, 0.0, 3.25]
        sketch = QuantileSketch()
        for v in values:
            sketch.add(v)
        assert sketch.count == len(values)
        assert sketch.min == min(values)
        assert sketch.max == max(values)
        assert sketch.sum == pytest.approx(sum(values))
        assert sketch.mean == pytest.approx(np.mean(values))

    def test_tiny_n_median(self):
        sketch = QuantileSketch()
        for v in (5.0, 1.0, 3.0):
            sketch.add(v)
        assert sketch.percentile(50) == 3.0

    def test_extremes_always_exact(self):
        rng = np.random.default_rng(11)
        sketch = QuantileSketch(epsilon=0.01)
        data = rng.pareto(1.2, 50_000)
        for v in data:
            sketch.add(float(v))
        assert sketch.quantile(0.0) == data.min()
        assert sketch.quantile(1.0) == data.max()

    def test_memory_is_sublinear(self):
        sketch = QuantileSketch(epsilon=0.005)
        for v in range(100_000):
            sketch.add(float(v))
        # GK holds O((1/eps) log(eps n)) tuples; at eps=0.005 that is a few
        # hundred for 100k sorted inserts, vs 100k for the exact list.
        assert sketch.size < 2_000

    def test_rejects_nan(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError):
            sketch.add(float("nan"))

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            QuantileSketch(epsilon=0.0)
        with pytest.raises(ValueError):
            QuantileSketch(epsilon=0.5)

    @pytest.mark.parametrize(
        "data",
        [
            np.arange(20_000, dtype=float),            # sorted (P2's nemesis)
            np.arange(20_000, dtype=float)[::-1],      # reverse sorted
            np.full(10_000, 3.14),                     # constant
            np.random.default_rng(0).pareto(1.1, 20_000),   # heavy-tailed
            np.random.default_rng(1).lognormal(0, 2, 20_000),
            np.repeat([1.0, 2.0, 3.0], 4_000),         # heavy duplicates
        ],
        ids=["sorted", "reverse", "constant", "pareto", "lognormal", "dupes"],
    )
    def test_rank_bound_on_adversarial_streams(self, data):
        epsilon = 0.005
        sketch = QuantileSketch(epsilon=epsilon)
        for v in data:
            sketch.add(float(v))
        ordered = np.sort(np.asarray(data, dtype=float))
        bound = gk_bound(epsilon, len(ordered))
        for p in (1, 10, 25, 50, 75, 90, 95, 99):
            err = rank_error(ordered, sketch.percentile(p), p)
            assert err <= bound, f"p{p}: rank error {err} exceeds {bound}"


class TestQuantileSketchProperties:
    """Hypothesis: the rank bound holds for arbitrary inputs and epsilons."""

    @settings(max_examples=150, deadline=None)
    @given(
        values=st.lists(
            st.floats(
                min_value=-1e9,
                max_value=1e9,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=400,
        ),
        percentile=st.sampled_from([1, 10, 50, 90, 95, 99]),
    )
    def test_rank_bound_holds(self, values, percentile):
        epsilon = 0.01
        sketch = QuantileSketch(epsilon=epsilon)
        for v in values:
            sketch.add(v)
        ordered = np.sort(np.asarray(values, dtype=float))
        err = rank_error(ordered, sketch.percentile(percentile), percentile)
        assert err <= gk_bound(epsilon, len(ordered))

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=300,
        )
    )
    def test_side_stats_exact(self, values):
        sketch = QuantileSketch()
        for v in values:
            sketch.add(v)
        assert sketch.count == len(values)
        assert sketch.min == min(values)
        assert sketch.max == max(values)
        assert sketch.sum == pytest.approx(math.fsum(values), rel=1e-12)

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=2_000),
        percentile=st.sampled_from([50, 95, 99]),
    )
    def test_sorted_stream_rank_bound(self, n, percentile):
        # Sorted input is the adversarial case P2-style heuristics lose on;
        # GK's bound must hold at every prefix length.
        epsilon = 0.01
        sketch = QuantileSketch(epsilon=epsilon)
        for v in range(n):
            sketch.add(float(v))
        ordered = np.arange(n, dtype=float)
        err = rank_error(ordered, sketch.percentile(percentile), percentile)
        assert err <= gk_bound(epsilon, n)


# ----------------------------------------------------------------------
# _DepthSeries unit tests
# ----------------------------------------------------------------------
class TestDepthSeries:
    def test_exact_while_under_capacity(self):
        series = _DepthSeries(capacity=16)
        for i, depth in enumerate([1, 2, 1, 2, 3, 2, 1, 0]):
            series.observe(float(i), depth)
        assert series.exact
        assert series.points() == [
            (0.0, 1), (1.0, 2), (2.0, 1), (3.0, 2),
            (4.0, 3), (5.0, 2), (6.0, 1), (7.0, 0),
        ]
        assert series.current_max() == 3

    def test_same_time_netting(self):
        # A +1/-1 at the same instant must net out, matching
        # metrics.queue_depth_timeseries semantics.
        series = _DepthSeries(capacity=16)
        series.observe(1.0, 1)
        series.observe(1.0, 0)   # placed at its own arrival instant
        series.observe(2.0, 1)
        assert series.points() == [(2.0, 1)]

    def test_reservoir_keeps_max_exact(self):
        series = _DepthSeries(capacity=8)
        depths = [(i % 13) for i in range(1_000)]
        for i, depth in enumerate(depths):
            series.observe(float(i), depth)
        assert not series.exact
        # capacity reservoir slots plus the still-pending live tail point
        assert len(series.points()) <= 8 + 1
        assert series.current_max() == 12

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            _DepthSeries(capacity=0)


# ----------------------------------------------------------------------
# Shared run harness (the PR-5 golden configuration)
# ----------------------------------------------------------------------
def result_key(result):
    return (
        result.job_id,
        result.circuit_name,
        result.arrival_time,
        result.placement_time,
        result.completion_time,
        result.num_remote_operations,
        result.num_qpus_used,
        result.outcome,
        result.num_preemptions,
        result.num_migrations,
        result.wasted_time,
        result.wasted_ops,
    )


def small_cloud():
    return QuantumCloud(
        CloudTopology.line(4),
        computing_qubits_per_qpu=16,
        communication_qubits_per_qpu=4,
        epr_success_probability=0.9,
    )


def run_golden_stream(
    scheduler_cls,
    telemetry=None,
    keep_results=True,
    tenants=None,
    admission_policy=None,
    preemption_policy=None,
):
    # Realign the process-global job counter so comparable runs mint
    # identical job ids (scheduler tiebreaks read the id strings).
    job_module._job_counter = itertools.count()
    simulator = MultiTenantSimulator(
        small_cloud(),
        placement_algorithm=CloudQCPlacement(),
        network_scheduler=scheduler_cls(),
        batch_manager=fifo_batch_manager(),
        admission_policy=admission_policy,
        preemption_policy=preemption_policy,
    )
    circuits = [ghz(24), ising(34), ghz(16), ghz(24)]
    arrivals = [0.0, 11.0, 25.0, 40.0]
    return simulator.run_stream(
        circuits,
        arrivals,
        seed=7,
        telemetry=telemetry,
        keep_results=keep_results,
        tenants=tenants,
    )


def run_burst_replay(telemetry=None, preemption_policy=None, keep_results=True):
    job_module._job_counter = itertools.count()
    trace = generate_anchor_burst_trace(cycles=6, fillers_per_cycle=8)
    simulator = MultiTenantSimulator(
        small_cloud(),
        placement_algorithm=CloudQCPlacement(),
        network_scheduler=CloudQCScheduler(),
        batch_manager=fifo_batch_manager(),
        admission_policy=QueueingDeadline(30.0),
        preemption_policy=preemption_policy,
    )
    return simulator.run_stream(
        trace.circuits,
        trace.arrival_times,
        seed=7,
        telemetry=telemetry,
        keep_results=keep_results,
        tenants=trace.tenant_ids,
    )


# ----------------------------------------------------------------------
# Golden A/B: attaching telemetry must not move a single bit
# ----------------------------------------------------------------------
class TestTelemetryBitIdentity:
    @pytest.mark.parametrize("scheduler_cls", SCHEDULERS)
    def test_sink_attached_run_bit_identical(self, scheduler_cls):
        baseline = run_golden_stream(scheduler_cls)
        observed = run_golden_stream(scheduler_cls, telemetry=Telemetry())
        assert [result_key(r) for r in baseline] == [
            result_key(r) for r in observed
        ]

    @pytest.mark.parametrize("scheduler_cls", SCHEDULERS)
    def test_event_stream_attached_run_bit_identical(self, scheduler_cls):
        baseline = run_golden_stream(scheduler_cls)
        sink = Telemetry(events=io.StringIO())
        observed = run_golden_stream(
            scheduler_cls, telemetry=sink, tenants=["a", "b", "a", "c"]
        )
        assert [result_key(r) for r in baseline] == [
            result_key(r) for r in observed
        ]

    def test_golden_stream_default_cloud_unchanged(self):
        # The exact pinned numbers of test_admission.py's golden stream --
        # the telemetry=None default path must reproduce PR-5 outputs.
        job_module._job_counter = itertools.count()
        cloud = QuantumCloud.default(seed=7)
        simulator = MultiTenantSimulator(
            cloud,
            placement_algorithm=CloudQCPlacement(),
            network_scheduler=CloudQCScheduler(),
            batch_manager=fifo_batch_manager(),
        )
        results = simulator.run_stream(
            [ghz(24), ising(34), ghz(16)], [0.0, 40.0, 80.0], seed=2
        )
        assert all(r.completed for r in results)
        completions = [r.completion_time for r in results]
        assert completions == pytest.approx([23.1, 66.0, 95.1], abs=0.5)

    def test_preemption_active_run_bit_identical(self):
        baseline = run_burst_replay(
            preemption_policy=DeadlineRescue(horizon=5.0)
        )
        observed = run_burst_replay(
            telemetry=Telemetry(),
            preemption_policy=DeadlineRescue(horizon=5.0),
        )
        assert [result_key(r) for r in baseline] == [
            result_key(r) for r in observed
        ]


# ----------------------------------------------------------------------
# Sketch-backed summary vs the exact result-list summary
# ----------------------------------------------------------------------
class TestFromTelemetry:
    def test_counters_and_means_match_exact_summary(self):
        sink = Telemetry()
        results = run_burst_replay(telemetry=sink)
        exact = StreamSummary.from_results(results)
        sketched = StreamSummary.from_telemetry(sink)
        assert sketched.total == exact.total
        assert sketched.completed == exact.completed
        assert sketched.rejected == exact.rejected
        assert sketched.expired == exact.expired
        assert sketched.rejection_rate == pytest.approx(exact.rejection_rate)
        assert sketched.queueing.count == exact.queueing.count
        assert sketched.queueing.mean == pytest.approx(exact.queueing.mean)
        assert sketched.completion.count == exact.completion.count
        assert sketched.completion.mean == pytest.approx(exact.completion.mean)
        assert sketched.completion.maximum == pytest.approx(
            exact.completion.maximum
        )
        assert sketched.preemption == exact.preemption
        assert sketched.max_queue_depth == exact.max_queue_depth

    def test_percentiles_within_rank_bound(self):
        sink = Telemetry()
        results = run_burst_replay(telemetry=sink)
        jcts = np.sort(
            [r.job_completion_time for r in results if r.completed]
        )
        bound = gk_bound(sink.jct.epsilon, len(jcts))
        for p in (50, 90, 99):
            err = rank_error(jcts, sink.jct.percentile(p), p)
            assert err <= bound

    def test_drop_aware_percentile_matches_exact(self):
        from repro.multitenant import drop_aware_jct_percentile

        sink = Telemetry()
        results = run_burst_replay(telemetry=sink)
        # The burst replay expires ~20% of jobs, so high percentiles go inf
        # in both the exact and the sketch-backed computation.
        assert math.isinf(drop_aware_jct_percentile(results, 99))
        assert math.isinf(sink.drop_aware_jct_percentile(99))
        exact_p50 = drop_aware_jct_percentile(results, 50)
        assert math.isfinite(exact_p50)
        assert math.isfinite(sink.drop_aware_jct_percentile(50))

    def test_tenant_counts(self):
        sink = Telemetry()
        run_burst_replay(telemetry=sink)
        # Anchor-burst traces round-robin nine tenants; every job finishes
        # with some terminal outcome.
        assert sum(
            sum(counts.values()) for counts in sink.tenant_counts.values()
        ) == sink.total


# ----------------------------------------------------------------------
# keep_results=False (the bounded-memory mode)
# ----------------------------------------------------------------------
class TestKeepResults:
    def test_returns_empty_list(self):
        sink = Telemetry()
        results = run_burst_replay(telemetry=sink, keep_results=False)
        assert results == []
        assert sink.total == 54
        assert sink.completed + sink.outcome_counts["expired"] == 54

    def test_requires_sink(self):
        with pytest.raises(ValueError):
            run_golden_stream(CloudQCScheduler, keep_results=False)

    def test_summary_identical_to_retained_run(self):
        retained_sink = Telemetry()
        run_burst_replay(telemetry=retained_sink)
        dropped_sink = Telemetry()
        run_burst_replay(telemetry=dropped_sink, keep_results=False)
        assert retained_sink.summary() == dropped_sink.summary()


# ----------------------------------------------------------------------
# Queue-depth series: exact under preemption (the documented
# queue_depth_timeseries undercount, satellite 2)
# ----------------------------------------------------------------------
class TestQueueDepthSeries:
    def test_matches_reconstruction_without_preemption(self):
        sink = Telemetry()
        results = run_burst_replay(telemetry=sink)
        assert sink.queue_depth_exact
        assert sink.queue_depth_series() == queue_depth_timeseries(results)
        assert sink.max_queue_depth == max(
            depth for _, depth in queue_depth_timeseries(results)
        )

    def test_exact_under_preemption_where_reconstruction_undercounts(self):
        sink = Telemetry()
        results = run_burst_replay(
            telemetry=sink, preemption_policy=DeadlineRescue(horizon=5.0)
        )
        assert sink.queue_depth_exact
        reconstructed = queue_depth_timeseries(results)
        online = sink.queue_depth_series()
        # DeadlineRescue requeues evicted victims; the per-job results only
        # record each job's FIRST queue stay, so the reconstruction misses
        # every requeue interval and undercounts the peak.
        assert sum(r.num_preemptions for r in results) > 0
        reconstructed_max = max(depth for _, depth in reconstructed)
        assert sink.max_queue_depth > reconstructed_max
        assert len(online) != len(reconstructed)
        # The online series ends with an empty queue: every admitted or
        # requeued job eventually left it.
        assert online[-1][1] == 0

    def test_depth_returns_to_zero(self):
        sink = Telemetry()
        run_burst_replay(
            telemetry=sink, preemption_policy=DeadlineRescue(horizon=5.0)
        )
        assert sink.depth == 0


# ----------------------------------------------------------------------
# Event stream: schema and offline round trip
# ----------------------------------------------------------------------
class TestEventStream:
    def test_events_conform_to_schema(self):
        buffer = io.StringIO()
        sink = Telemetry(events=buffer)
        run_burst_replay(
            telemetry=sink, preemption_policy=DeadlineRescue(horizon=5.0)
        )
        records = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert records, "run emitted no events"
        for record in records:
            assert record["event"] in TELEMETRY_EVENTS
            assert isinstance(record["t"], (int, float))
            assert isinstance(record["job"], str)
        kinds = {record["event"] for record in records}
        assert {"job_arrived", "admitted", "placed", "completed"} <= kinds
        assert "preempted" in kinds and "requeued" in kinds
        for record in records:
            if record["event"] == "completed":
                assert {"jct", "wait", "qpus_used"} <= record.keys()
            if record["event"] in ("admitted", "requeued", "placed"):
                assert "depth" in record

    def test_round_trip_reproduces_online_summary(self):
        buffer = io.StringIO()
        sink = Telemetry(events=buffer)
        run_burst_replay(
            telemetry=sink, preemption_policy=DeadlineRescue(horizon=5.0)
        )
        rebuilt = Telemetry.from_events(buffer.getvalue().splitlines())
        assert rebuilt.summary() == sink.summary()
        assert rebuilt.outcome_counts == sink.outcome_counts
        assert rebuilt.tenant_counts == sink.tenant_counts
        assert rebuilt.qpu_placements == sink.qpu_placements
        assert rebuilt.max_queue_depth == sink.max_queue_depth
        assert rebuilt.queue_depth_series() == sink.queue_depth_series()

    def test_round_trip_from_file(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with Telemetry(events=path) as sink:
            run_burst_replay(telemetry=sink)
        online = sink.summary()
        rebuilt = Telemetry.from_events(path)
        assert rebuilt.summary() == online

    def test_iter_events_skips_blank_lines(self):
        lines = ['{"event": "admitted", "t": 0.0, "job": "j0"}', "", "  "]
        assert len(list(iter_events(lines))) == 1

    def test_unknown_event_rejected(self):
        with pytest.raises(ValueError):
            Telemetry.from_events(['{"event": "nonsense", "t": 0, "job": "x"}'])

    def test_close_owns_path_stream(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        sink = Telemetry(events=path)
        sink._emit("admitted", 0.0, "job-0", depth=1)
        sink.close()
        assert json.loads(open(path).read())["depth"] == 1
        # Closing twice is harmless.
        sink.close()
