"""Tests for the CloudQCFramework facade and its configuration objects."""

import pytest

from repro import CloudQCFramework, FrameworkConfig
from repro.circuits.library import get_circuit, ghz, ising
from repro.core import CloudConfig, PlacementConfig, SchedulingConfig


class TestConfig:
    def test_default_cloud_config_matches_paper(self):
        cloud = CloudConfig(seed=1).build_cloud()
        assert cloud.num_qpus == 20
        assert cloud.qpu(0).computing_capacity == 20
        assert cloud.qpu(0).communication_capacity == 5
        assert cloud.epr_success_probability == pytest.approx(0.3)

    @pytest.mark.parametrize("kind", ["line", "ring", "star", "complete"])
    def test_alternative_topologies(self, kind):
        cloud = CloudConfig(num_qpus=6, topology=kind).build_cloud()
        assert cloud.num_qpus == 6

    def test_unknown_topology(self):
        with pytest.raises(ValueError):
            CloudConfig(topology="torus").build_cloud()

    def test_framework_config_defaults(self):
        config = FrameworkConfig()
        assert config.placement.algorithm == "cloudqc"
        assert config.scheduling.policy == "cloudqc"
        assert config.batch_mode == "priority"


class TestFrameworkConstruction:
    def test_with_defaults(self):
        framework = CloudQCFramework.with_defaults(seed=3)
        assert framework.cloud.num_qpus == 20
        assert framework.placement_algorithm.name == "cloudqc"
        assert framework.network_scheduler.name == "cloudqc"

    def test_from_config_with_baselines(self):
        config = FrameworkConfig(
            cloud=CloudConfig(num_qpus=8, seed=2),
            placement=PlacementConfig(algorithm="random"),
            scheduling=SchedulingConfig(policy="greedy"),
            batch_mode="fifo",
        )
        framework = CloudQCFramework.from_config(config)
        assert framework.placement_algorithm.name == "random"
        assert framework.network_scheduler.name == "greedy"

    def test_seed_override(self):
        a = CloudQCFramework.from_config(FrameworkConfig(), seed=5)
        b = CloudQCFramework.from_config(FrameworkConfig(), seed=5)
        assert sorted(a.cloud.topology.links()) == sorted(b.cloud.topology.links())


class TestSingleCircuitPipeline:
    def test_place_circuit(self):
        framework = CloudQCFramework.with_defaults(seed=3)
        placement = framework.place_circuit(ghz(48), seed=1)
        assert placement.respects_capacity(framework.cloud)

    def test_run_circuit_outcome(self):
        framework = CloudQCFramework.with_defaults(seed=3)
        outcome = framework.run_circuit(ising(34), seed=1)
        assert outcome.completion_time > 0
        assert outcome.result.num_remote_operations == outcome.placement.num_remote_operations()
        assert outcome.communication_cost >= 0


class TestBatchPipeline:
    def test_run_batch_and_jct_helper(self):
        framework = CloudQCFramework.with_defaults(seed=3)
        results = framework.run_batch(
            [ghz(16), ising(34), get_circuit("qft_n29")], seed=2
        )
        assert len(results) == 3
        jcts = framework.job_completion_times(results)
        assert len(jcts) == 3
        assert all(value >= 0 for value in jcts.values())
