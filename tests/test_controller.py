"""Tests for the cloud controller."""

import pytest

from repro.cloud import Controller, JobStatus, PlacementError


class TestSubmission:
    def test_submit_registers_job(self, small_cloud, bell_circuit):
        controller = Controller(small_cloud)
        job = controller.submit(bell_circuit, arrival_time=5.0)
        assert controller.job(job.job_id) is job
        assert controller.pending_jobs() == [job]

    def test_unknown_job_lookup_returns_none(self, small_cloud):
        controller = Controller(small_cloud)
        assert controller.job("missing") is None


class TestPlacementLifecycle:
    def test_place_reserves_cloud_resources(self, small_cloud, bell_circuit):
        controller = Controller(small_cloud)
        job = controller.submit(bell_circuit)
        controller.place(job, {0: 0, 1: 1})
        assert job.status is JobStatus.PLACED
        assert small_cloud.qpu(0).computing_available == 3
        assert controller.running_jobs() == [job]

    def test_place_unknown_job_raises(self, small_cloud, bell_circuit):
        controller = Controller(small_cloud)
        from repro.cloud import Job

        rogue = Job(circuit=bell_circuit)
        with pytest.raises(KeyError):
            controller.place(rogue, {0: 0, 1: 1})

    def test_double_place_rejected(self, small_cloud, bell_circuit):
        controller = Controller(small_cloud)
        job = controller.submit(bell_circuit)
        controller.place(job, {0: 0, 1: 1})
        with pytest.raises(PlacementError):
            controller.place(job, {0: 2, 1: 3})

    def test_place_with_policy(self, small_cloud, bell_circuit):
        controller = Controller(small_cloud)
        job = controller.submit(bell_circuit)

        def policy(circuit, cloud):
            return {q: 0 for q in range(circuit.num_qubits)}

        mapping = controller.place_with_policy(job, policy)
        assert mapping == {0: 0, 1: 0}
        assert small_cloud.qpu(0).computing_available == 2

    def test_start_requires_placed(self, small_cloud, bell_circuit):
        controller = Controller(small_cloud)
        job = controller.submit(bell_circuit)
        with pytest.raises(PlacementError):
            controller.start(job, 0.0)

    def test_complete_releases_resources(self, small_cloud, bell_circuit):
        controller = Controller(small_cloud)
        job = controller.submit(bell_circuit, arrival_time=0.0)
        controller.place(job, {0: 0, 1: 1})
        controller.start(job, 1.0)
        controller.complete(job, 9.0)
        assert job.status is JobStatus.COMPLETED
        assert small_cloud.total_computing_available() == 16
        assert controller.completed_jobs() == [job]

    def test_fail_releases_resources(self, small_cloud, bell_circuit):
        controller = Controller(small_cloud)
        job = controller.submit(bell_circuit)
        controller.place(job, {0: 0, 1: 0})
        controller.fail(job)
        assert job.status is JobStatus.FAILED
        assert small_cloud.total_computing_available() == 16

    def test_cloud_status_reports_all_qpus(self, small_cloud, bell_circuit):
        controller = Controller(small_cloud)
        job = controller.submit(bell_circuit)
        controller.place(job, {0: 2, 1: 2})
        status = controller.cloud_status()
        assert status[2]["computing_used"] == 2
