"""Tests for the cloud controller."""

import pytest

from repro.cloud import Controller, JobStatus, PlacementError


class TestSubmission:
    def test_submit_registers_job(self, small_cloud, bell_circuit):
        controller = Controller(small_cloud)
        job = controller.submit(bell_circuit, arrival_time=5.0)
        assert controller.job(job.job_id) is job
        assert controller.pending_jobs() == [job]

    def test_unknown_job_lookup_returns_none(self, small_cloud):
        controller = Controller(small_cloud)
        assert controller.job("missing") is None


class TestPlacementLifecycle:
    def test_place_reserves_cloud_resources(self, small_cloud, bell_circuit):
        controller = Controller(small_cloud)
        job = controller.submit(bell_circuit)
        controller.place(job, {0: 0, 1: 1})
        assert job.status is JobStatus.PLACED
        assert small_cloud.qpu(0).computing_available == 3
        assert controller.running_jobs() == [job]

    def test_place_unknown_job_raises(self, small_cloud, bell_circuit):
        controller = Controller(small_cloud)
        from repro.cloud import Job

        rogue = Job(circuit=bell_circuit)
        with pytest.raises(KeyError):
            controller.place(rogue, {0: 0, 1: 1})

    def test_double_place_rejected(self, small_cloud, bell_circuit):
        controller = Controller(small_cloud)
        job = controller.submit(bell_circuit)
        controller.place(job, {0: 0, 1: 1})
        with pytest.raises(PlacementError):
            controller.place(job, {0: 2, 1: 3})

    def test_place_with_policy(self, small_cloud, bell_circuit):
        controller = Controller(small_cloud)
        job = controller.submit(bell_circuit)

        def policy(circuit, cloud):
            return {q: 0 for q in range(circuit.num_qubits)}

        mapping = controller.place_with_policy(job, policy)
        assert mapping == {0: 0, 1: 0}
        assert small_cloud.qpu(0).computing_available == 2

    def test_start_requires_placed(self, small_cloud, bell_circuit):
        controller = Controller(small_cloud)
        job = controller.submit(bell_circuit)
        with pytest.raises(PlacementError):
            controller.start(job, 0.0)

    def test_complete_releases_resources(self, small_cloud, bell_circuit):
        controller = Controller(small_cloud)
        job = controller.submit(bell_circuit, arrival_time=0.0)
        controller.place(job, {0: 0, 1: 1})
        controller.start(job, 1.0)
        controller.complete(job, 9.0)
        assert job.status is JobStatus.COMPLETED
        assert small_cloud.total_computing_available() == 16
        assert controller.completed_jobs() == [job]

    def test_fail_releases_resources(self, small_cloud, bell_circuit):
        controller = Controller(small_cloud)
        job = controller.submit(bell_circuit)
        controller.place(job, {0: 0, 1: 0})
        controller.fail(job)
        assert job.status is JobStatus.FAILED
        assert small_cloud.total_computing_available() == 16


class TestDropTransition:
    """The unified drop path: release reservations iff the job holds any."""

    def test_drop_of_placed_job_releases(self, small_cloud, bell_circuit):
        controller = Controller(small_cloud)
        job = controller.submit(bell_circuit)
        controller.place(job, {0: 0, 1: 1})
        controller.drop(job)
        assert job.status is JobStatus.FAILED
        assert small_cloud.total_computing_available() == 16

    def test_drop_of_running_job_releases(self, small_cloud, bell_circuit):
        controller = Controller(small_cloud)
        job = controller.submit(bell_circuit)
        controller.place(job, {0: 0, 1: 1})
        controller.start(job, 1.0)
        controller.drop(job)
        assert job.status is JobStatus.FAILED
        assert small_cloud.total_computing_available() == 16

    def test_drop_of_pending_job_does_not_touch_the_cloud(
        self, small_cloud, bell_circuit
    ):
        # Regression: the old path unconditionally released, which was wrong
        # for never-admitted jobs (rejected at arrival / expired in queue).
        controller = Controller(small_cloud)
        job = controller.submit(bell_circuit)
        version = small_cloud.resource_version
        controller.drop(job)
        assert job.status is JobStatus.FAILED
        assert small_cloud.resource_version == version


class TestPreemptTransition:
    def test_preempt_running_job_requeues_and_releases(
        self, small_cloud, bell_circuit
    ):
        controller = Controller(small_cloud)
        job = controller.submit(bell_circuit)
        controller.place(job, {0: 0, 1: 1})
        controller.start(job, 1.0)
        controller.preempt(job, 7.0)
        assert job.status is JobStatus.PENDING
        assert job.placement is None
        assert job.start_time is None
        assert job.num_preemptions == 1
        assert job.last_preempted_time == 7.0
        assert small_cloud.total_computing_available() == 16

    def test_preempted_job_can_be_placed_again(self, small_cloud, bell_circuit):
        controller = Controller(small_cloud)
        job = controller.submit(bell_circuit)
        controller.place(job, {0: 0, 1: 1})
        controller.start(job, 1.0)
        controller.preempt(job, 7.0)
        controller.place(job, {0: 2, 1: 3})
        controller.start(job, 9.0)
        assert job.status is JobStatus.RUNNING
        assert job.qubits_per_qpu() == {2: 1, 3: 1}

    def test_preempt_requires_a_reservation(self, small_cloud, bell_circuit):
        controller = Controller(small_cloud)
        job = controller.submit(bell_circuit)
        with pytest.raises(PlacementError):
            controller.preempt(job, 0.0)


class TestMigrateTransition:
    def test_migrate_moves_the_reservation(self, small_cloud, bell_circuit):
        controller = Controller(small_cloud)
        job = controller.submit(bell_circuit)
        controller.place(job, {0: 0, 1: 1})
        controller.start(job, 1.0)
        controller.migrate(job, {0: 2, 1: 2}, 5.0)
        assert job.status is JobStatus.RUNNING
        assert job.num_migrations == 1
        assert job.last_migrated_time == 5.0
        assert small_cloud.qpu(0).computing_available == 4
        assert small_cloud.qpu(1).computing_available == 4
        assert small_cloud.qpu(2).computing_available == 2

    def test_migrate_can_reuse_its_own_qubits(self, small_cloud, bell_circuit):
        # The old reservation is released before the new one is admitted, so
        # consolidating onto a QPU the job already occupies works.
        controller = Controller(small_cloud)
        job = controller.submit(bell_circuit)
        controller.place(job, {0: 0, 1: 1})
        controller.start(job, 1.0)
        small_cloud.qpus[0].allocate_computing("other", 2)
        controller.migrate(job, {0: 0, 1: 0}, 5.0)  # 2 + own 1 <= 4
        assert small_cloud.qpu(0).computing_held_by(job.job_id) == 2
        assert small_cloud.qpu(1).computing_available == 4

    def test_failed_migrate_restores_the_old_reservation(
        self, small_cloud, bell_circuit
    ):
        controller = Controller(small_cloud)
        job = controller.submit(bell_circuit)
        controller.place(job, {0: 0, 1: 1})
        controller.start(job, 1.0)
        small_cloud.qpus[2].allocate_computing("other", 3)
        with pytest.raises(PlacementError):
            controller.migrate(job, {0: 2, 1: 2}, 5.0)  # 2 > 1 free on QPU 2
        assert job.status is JobStatus.RUNNING
        assert job.num_migrations == 0
        assert job.placement == {0: 0, 1: 1}
        assert small_cloud.qpu(0).computing_held_by(job.job_id) == 1
        assert small_cloud.qpu(1).computing_held_by(job.job_id) == 1

    def test_migrate_requires_a_reservation(self, small_cloud, bell_circuit):
        controller = Controller(small_cloud)
        job = controller.submit(bell_circuit)
        with pytest.raises(PlacementError):
            controller.migrate(job, {0: 0, 1: 0}, 0.0)

    def test_cloud_status_reports_all_qpus(self, small_cloud, bell_circuit):
        controller = Controller(small_cloud)
        job = controller.submit(bell_circuit)
        controller.place(job, {0: 2, 1: 2})
        status = controller.cloud_status()
        assert status[2]["computing_used"] == 2
