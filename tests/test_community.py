"""Tests for modularity, Louvain/CNM community detection, and QPU selection."""

import networkx as nx
import pytest

from repro.cloud import CloudTopology, QuantumCloud
from repro.community import (
    CommunityError,
    best_partition,
    community_capacity,
    detect_communities,
    expand_community,
    graph_center,
    greedy_modularity_communities,
    louvain_communities,
    modularity,
    modularity_from_assignment,
    select_qpu_community,
    total_edge_weight,
    weighted_degrees,
)


def two_cliques(size: int = 8) -> nx.Graph:
    graph = nx.Graph()
    for base in (0, size):
        for i in range(base, base + size):
            for j in range(i + 1, base + size):
                graph.add_edge(i, j, weight=1.0)
    graph.add_edge(0, size, weight=1.0)
    return graph


class TestModularity:
    def test_total_edge_weight(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=2.0)
        graph.add_edge(1, 2, weight=3.0)
        assert total_edge_weight(graph) == 5.0

    def test_weighted_degrees(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=2.0)
        graph.add_edge(1, 2, weight=3.0)
        assert weighted_degrees(graph)[1] == 5.0

    def test_single_community_has_zero_modularity(self):
        graph = two_cliques(4)
        assert modularity(graph, [set(graph.nodes())]) == pytest.approx(0.0)

    def test_good_split_has_high_modularity(self):
        graph = two_cliques(6)
        left = {n for n in graph.nodes() if n < 6}
        right = set(graph.nodes()) - left
        assert modularity(graph, [left, right]) > 0.4

    def test_overlapping_communities_rejected(self):
        graph = two_cliques(3)
        with pytest.raises(ValueError):
            modularity(graph, [{0, 1, 2}, {2, 3, 4, 5}])

    def test_incomplete_cover_rejected(self):
        graph = two_cliques(3)
        with pytest.raises(ValueError):
            modularity(graph, [{0, 1}])

    def test_modularity_from_assignment(self):
        graph = two_cliques(4)
        assignment = {n: 0 if n < 4 else 1 for n in graph.nodes()}
        assert modularity_from_assignment(graph, assignment) > 0.3

    def test_empty_graph_modularity_zero(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1])
        assert modularity(graph, [{0}, {1}]) == 0.0


class TestDetection:
    def test_louvain_recovers_cliques(self):
        graph = two_cliques()
        communities = louvain_communities(graph, seed=1)
        assert len(communities) == 2
        assert {frozenset(c) for c in communities} == {
            frozenset(range(8)),
            frozenset(range(8, 16)),
        }

    def test_louvain_empty_graph(self):
        assert louvain_communities(nx.Graph()) == []

    def test_louvain_non_contiguous_node_labels(self):
        # Regression: a graph whose labels have holes (node 0 missing, as in
        # a resource graph after a QPU left the fleet) used to KeyError when
        # level 1 merged communities, because the membership map was seeded
        # with enumeration indices instead of node labels.
        graph = nx.Graph()
        graph.add_edge(1, 2, weight=3.0)
        graph.add_edge(2, 3, weight=3.0)
        graph.add_edge(1, 3, weight=3.0)
        graph.add_edge(3, 7, weight=0.1)
        graph.add_edge(7, 8, weight=3.0)
        communities = louvain_communities(graph, seed=1)
        assert set().union(*communities) == {1, 2, 3, 7, 8}
        assert {1, 2, 3} in communities

    def test_best_partition_assignment_covers_graph(self):
        graph = two_cliques()
        assignment = best_partition(graph, seed=1)
        assert set(assignment) == set(graph.nodes())

    def test_greedy_recovers_cliques(self):
        communities = greedy_modularity_communities(two_cliques())
        assert len(communities) == 2

    def test_greedy_weight_sensitivity(self):
        graph = nx.path_graph(4)
        nx.set_edge_attributes(graph, 1.0, "weight")
        graph[1][2]["weight"] = 0.01
        communities = greedy_modularity_communities(graph)
        assert {frozenset(c) for c in communities} >= {frozenset({0, 1}), frozenset({2, 3})}

    def test_detect_communities_dispatch(self):
        graph = two_cliques(4)
        assert len(detect_communities(graph, method="louvain", seed=1)) == 2
        assert len(detect_communities(graph, method="greedy")) == 2
        with pytest.raises(ValueError):
            detect_communities(graph, method="nope")

    def test_communities_partition_the_nodes(self):
        graph = nx.erdos_renyi_graph(25, 0.2, seed=3)
        nx.set_edge_attributes(graph, 1.0, "weight")
        communities = louvain_communities(graph, seed=2)
        union = set().union(*communities) if communities else set()
        assert union == set(graph.nodes())
        assert sum(len(c) for c in communities) == graph.number_of_nodes()


class TestGraphCenter:
    def test_center_of_path(self):
        graph = nx.path_graph(7)
        assert graph_center(graph) == 3

    def test_center_restricted_to_nodes(self):
        graph = nx.path_graph(7)
        assert graph_center(graph, nodes=[0, 1, 2]) == 1

    def test_center_of_single_node(self):
        graph = nx.Graph()
        graph.add_node(5)
        assert graph_center(graph) == 5

    def test_center_of_empty_graph_raises(self):
        with pytest.raises(ValueError):
            graph_center(nx.Graph())


class TestQpuSelection:
    def _resource_graph(self, availabilities, edges):
        graph = nx.Graph()
        for node, available in enumerate(availabilities):
            graph.add_node(node, available=available, capacity=available)
        for a, b in edges:
            graph.add_edge(a, b, weight=1.0)
        return graph

    def test_community_capacity(self):
        graph = self._resource_graph([5, 10, 0], [(0, 1), (1, 2)])
        assert community_capacity(graph, {0, 1}) == 15

    def test_select_prefers_tight_fitting_community(self, default_cloud):
        selection = select_qpu_community(
            default_cloud.resource_graph(), 64, min_qpus=4, seed=1
        )
        total = sum(
            default_cloud.qpu(qpu).computing_available for qpu in selection
        )
        assert total >= 64
        assert len(selection) < default_cloud.num_qpus

    def test_select_raises_when_cloud_is_full(self):
        graph = self._resource_graph([2, 2], [(0, 1)])
        with pytest.raises(CommunityError):
            select_qpu_community(graph, 10)

    def test_expand_community_grows_until_capacity(self):
        graph = self._resource_graph([4, 4, 4, 4], [(0, 1), (1, 2), (2, 3)])
        grown = expand_community(graph, {0}, 10)
        assert community_capacity(graph, grown) >= 10

    def test_expand_community_unreachable_raises(self):
        graph = self._resource_graph([4, 4], [])
        with pytest.raises(CommunityError):
            expand_community(graph, {0}, 8)

    def test_select_requires_positive_request(self, default_cloud):
        with pytest.raises(ValueError):
            select_qpu_community(default_cloud.resource_graph(), 0)

    def test_selection_is_connected_for_line_cloud(self):
        topology = CloudTopology.line(8)
        cloud = QuantumCloud(topology, computing_qubits_per_qpu=5)
        selection = select_qpu_community(cloud.resource_graph(), 12, seed=1)
        subgraph = cloud.topology.graph.subgraph(selection)
        assert nx.is_connected(subgraph)
