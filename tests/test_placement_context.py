"""Tests for the placement fast path: resource versioning and PlacementContext.

Covers the invalidation contract of the version-keyed caches: ``admit`` /
``release`` bump ``resource_version``; a stale community/QPU-set entry is
never served after the cloud mutates; and warm-cache placements equal
cold-cache placements bit-for-bit under fixed seeds.
"""

from __future__ import annotations

import pytest

from repro.circuits.library import get_circuit
from repro.cloud import CloudTopology, QuantumCloud
from repro.placement import (
    CloudQCBFSPlacement,
    CloudQCPlacement,
    PlacementContext,
    bfs_qpu_set,
    community_qpu_set,
)


@pytest.fixture
def cloud():
    return QuantumCloud(
        CloudTopology.line(6),
        computing_qubits_per_qpu=10,
        communication_qubits_per_qpu=4,
    )


class TestResourceVersion:
    def test_admit_bumps_version(self, cloud):
        before = cloud.resource_version
        cloud.admit("job-a", {0: 0, 1: 0, 2: 1})
        assert cloud.resource_version > before

    def test_release_bumps_version(self, cloud):
        cloud.admit("job-a", {0: 0, 1: 1})
        before = cloud.resource_version
        assert cloud.release("job-a") == 2
        assert cloud.resource_version > before

    def test_noop_release_does_not_bump(self, cloud):
        cloud.admit("job-a", {0: 0})
        before = cloud.resource_version
        assert cloud.release("ghost") == 0
        assert cloud.resource_version == before

    def test_direct_qpu_mutation_bumps(self, cloud):
        # Caches must stay correct even when a QPU is mutated directly.
        before = cloud.resource_version
        cloud.qpu(3).allocate_computing("job-x", 2)
        assert cloud.resource_version > before

    def test_communication_qubits_do_not_bump(self, cloud):
        before = cloud.resource_version
        cloud.qpu(0).allocate_communication(2)
        cloud.qpu(0).reset_communication()
        assert cloud.resource_version == before

    def test_version_is_monotonic(self, cloud):
        seen = [cloud.resource_version]
        cloud.admit("a", {0: 0, 1: 2})
        seen.append(cloud.resource_version)
        cloud.admit("b", {0: 4})
        seen.append(cloud.resource_version)
        cloud.release("a")
        seen.append(cloud.resource_version)
        assert seen == sorted(seen) and len(set(seen)) == len(seen)


class TestCloudCaches:
    def test_resource_graph_cached_per_version(self, cloud):
        graph = cloud.resource_graph()
        assert cloud.resource_graph() is graph  # same object, same version
        cloud.admit("job-a", {0: 0, 1: 0})
        fresh = cloud.resource_graph()
        assert fresh is not graph
        assert fresh.nodes[0]["available"] == 8

    def test_available_computing_cached_copy_is_safe(self, cloud):
        first = cloud.available_computing()
        first[0] = -999  # mutating the returned dict must not poison the cache
        assert cloud.available_computing()[0] == 10
        cloud.admit("job-a", {0: 2})
        assert cloud.available_computing()[2] == 9

    def test_clone_empty_starts_fresh(self, cloud):
        cloud.admit("job-a", {0: 0})
        clone = cloud.clone_empty()
        assert clone.resource_version == 0
        assert clone.available_computing()[0] == 10


class TestPlacementContext:
    def test_interaction_graph_cached_per_circuit(self):
        context = PlacementContext()
        circuit = get_circuit("ghz_n8")
        assert context.interaction(circuit) is context.interaction(circuit)
        assert context.interaction_nx(circuit) is context.interaction_nx(circuit)
        other = get_circuit("qft_n16")
        assert context.interaction(other) is not context.interaction(circuit)

    def test_partition_cached_only_with_seed(self):
        context = PlacementContext()
        circuit = get_circuit("qft_n16")
        seeded = context.partition(circuit, 3, 0.3, seed=5)
        assert context.partition(circuit, 3, 0.3, seed=5) is seeded
        assert context.partition(circuit, 3, 0.3, None) is not context.partition(
            circuit, 3, 0.3, None
        )

    def test_partition_matches_uncached(self):
        from repro.partition import partition_graph

        context = PlacementContext()
        circuit = get_circuit("qft_n16")
        expected = partition_graph(
            context.interaction_nx(circuit), 3, imbalance=0.3, seed=5
        )
        assert context.partition(circuit, 3, 0.3, seed=5) == expected

    def test_community_qpu_set_matches_uncached(self, cloud):
        context = PlacementContext()
        cached = community_qpu_set(cloud, 24, min_qpus=3, seed=2, context=context)
        uncached = community_qpu_set(cloud, 24, min_qpus=3, seed=2)
        assert cached == uncached
        # A hit returns an equal list without aliasing the cached tuple.
        again = community_qpu_set(cloud, 24, min_qpus=3, seed=2, context=context)
        assert again == cached and again is not cached

    def test_stale_entry_never_served_after_mutation(self, cloud):
        context = PlacementContext()
        before = community_qpu_set(cloud, 40, min_qpus=4, seed=3, context=context)
        # Drain three QPUs: the availability map changes, so the cached QPU
        # set for the old version must not be reused.
        cloud.admit("hog", {q: qpu for q, qpu in enumerate([0] * 10 + [1] * 10 + [2] * 10)})
        after = community_qpu_set(cloud, 25, min_qpus=3, seed=3, context=context)
        fresh = community_qpu_set(cloud, 25, min_qpus=3, seed=3)
        assert after == fresh
        assert not set(after) <= {0, 1, 2}  # drained QPUs cannot cover 25 qubits

    def test_bfs_qpu_set_memoized_and_invalidated(self, cloud):
        context = PlacementContext()
        first = bfs_qpu_set(cloud, 24, min_qpus=3, context=context)
        assert bfs_qpu_set(cloud, 24, min_qpus=3, context=context) == first
        assert first == bfs_qpu_set(cloud, 24, min_qpus=3)
        cloud.admit("hog", {q: 5 for q in range(10)})
        assert bfs_qpu_set(cloud, 24, min_qpus=3, context=context) == bfs_qpu_set(
            cloud, 24, min_qpus=3
        )

    def test_eviction_bound(self):
        context = PlacementContext(max_entries=8)
        circuit = get_circuit("qft_n16")
        for seed in range(40):
            context.partition(circuit, 3, 0.3, seed=seed)
        assert len(context._partitions) <= 8
        # Evicted entries recompute to the same value.
        from repro.partition import partition_graph

        expected = partition_graph(
            context.interaction_nx(circuit), 3, imbalance=0.3, seed=0
        )
        assert context.partition(circuit, 3, 0.3, seed=0) == expected

    def test_hit_rate_accounting(self, cloud):
        context = PlacementContext()
        assert context.hit_rate == 0.0
        circuit = get_circuit("ghz_n8")
        context.interaction(circuit)
        context.interaction(circuit)
        assert context.hits == 1 and context.misses == 1
        assert context.hit_rate == 0.5
        assert context.stats()["interaction_graphs"] == 1


class TestWarmEqualsCold:
    @pytest.mark.parametrize("algorithm_cls", [CloudQCPlacement, CloudQCBFSPlacement])
    def test_shared_context_is_bit_identical(self, cloud, algorithm_cls):
        circuit = get_circuit("ghz_n24")
        algorithm = algorithm_cls()
        context = PlacementContext()
        cold = algorithm.place(circuit, cloud, seed=9)
        warm_miss = algorithm.place(circuit, cloud, seed=9, context=context)
        warm_hit = algorithm.place(circuit, cloud, seed=9, context=context)
        assert cold.mapping == warm_miss.mapping == warm_hit.mapping
        assert cold.score == warm_miss.score == warm_hit.score
        assert cold.metadata == warm_miss.metadata == warm_hit.metadata

    def test_context_survives_cloud_mutation(self, cloud):
        circuit = get_circuit("ghz_n24")
        algorithm = CloudQCPlacement()
        context = PlacementContext()
        algorithm.place(circuit, cloud, seed=9, context=context)
        cloud.admit("tenant", {q: 3 for q in range(6)})
        warm = algorithm.place(circuit, cloud, seed=9, context=context)
        fresh = algorithm.place(circuit, cloud, seed=9)
        assert warm.mapping == fresh.mapping
        assert warm.score == fresh.score
