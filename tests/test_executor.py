"""Tests for the round-based network executor."""

import pytest

from repro.circuits import QuantumCircuit
from repro.cloud import CloudTopology, QuantumCloud
from repro.scheduling import AverageScheduler, CloudQCScheduler, GreedyScheduler
from repro.sim import (
    DEFAULT_LATENCY,
    NetworkExecutor,
    ScheduledJob,
    local_execution_time,
    mean_completion_time,
)


@pytest.fixture
def two_qpu_cloud() -> QuantumCloud:
    topology = CloudTopology.line(2)
    return QuantumCloud(
        topology,
        computing_qubits_per_qpu=4,
        communication_qubits_per_qpu=2,
        epr_success_probability=1.0,
    )


@pytest.fixture
def remote_pair_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(2, name="pair")
    circuit.h(0)
    circuit.cx(0, 1)
    return circuit


class TestLocalExecutionTime:
    def test_critical_path_only(self, bell_circuit):
        assert local_execution_time(bell_circuit) == pytest.approx(1.1)

    def test_parallel_gates_do_not_add(self):
        circuit = QuantumCircuit(4)
        for q in range(4):
            circuit.h(q)
        assert local_execution_time(circuit) == pytest.approx(0.1)


class TestDeterministicExecution:
    def test_single_remote_gate_timing(self, two_qpu_cloud, remote_pair_circuit):
        executor = NetworkExecutor(two_qpu_cloud, CloudQCScheduler())
        result = executor.execute_single(
            remote_pair_circuit, {0: 0, 1: 1}, seed=1
        )
        # With p=1 the single remote gate needs one EPR round + CX + measure.
        expected = DEFAULT_LATENCY.epr_preparation + 1.0 + 5.0
        assert result.completion_time == pytest.approx(expected)
        assert result.num_remote_operations == 1
        assert result.epr_rounds == 1

    def test_local_job_completes_in_local_time(self, two_qpu_cloud, bell_circuit):
        executor = NetworkExecutor(two_qpu_cloud, CloudQCScheduler())
        result = executor.execute_single(bell_circuit, {0: 0, 1: 0}, seed=1)
        assert result.completion_time == pytest.approx(1.1)
        assert result.epr_rounds == 0

    def test_serial_remote_gates_take_serial_rounds(self, two_qpu_cloud):
        circuit = QuantumCircuit(2)
        for _ in range(3):
            circuit.cx(0, 1)
        executor = NetworkExecutor(two_qpu_cloud, CloudQCScheduler())
        result = executor.execute_single(circuit, {0: 0, 1: 1}, seed=1)
        assert result.epr_rounds == 3
        assert result.completion_time == pytest.approx(3 * 10.0 + 6.0)

    def test_start_time_offsets_completion(self, two_qpu_cloud, remote_pair_circuit):
        executor = NetworkExecutor(two_qpu_cloud, CloudQCScheduler())
        job = ScheduledJob("late", remote_pair_circuit, {0: 0, 1: 1}, start_time=100.0)
        result = executor.execute([job], seed=1)["late"]
        assert result.start_time == 100.0
        assert result.completion_time == pytest.approx(116.0)


class TestProbabilisticExecution:
    def test_lower_probability_takes_longer_on_average(self, remote_pair_circuit):
        topology = CloudTopology.line(2)
        cloud = QuantumCloud(topology, communication_qubits_per_qpu=1)
        slow = NetworkExecutor(cloud, AverageScheduler(), epr_success_probability=0.1)
        fast = NetworkExecutor(cloud, AverageScheduler(), epr_success_probability=0.9)
        slow_mean = sum(
            slow.execute_single(remote_pair_circuit, {0: 0, 1: 1}, seed=s).completion_time
            for s in range(10)
        )
        fast_mean = sum(
            fast.execute_single(remote_pair_circuit, {0: 0, 1: 1}, seed=s).completion_time
            for s in range(10)
        )
        assert slow_mean > fast_mean

    def test_redundancy_helps_under_low_probability(self):
        # One remote gate, plenty of communication qubits: the CloudQC policy
        # fires several attempts per round and finishes sooner than a policy
        # restricted to one pair per round.
        topology = CloudTopology.line(2)
        cloud = QuantumCloud(topology, communication_qubits_per_qpu=5)
        circuit = QuantumCircuit(2)
        for _ in range(5):
            circuit.cx(0, 1)
        redundant = NetworkExecutor(cloud, CloudQCScheduler(), epr_success_probability=0.2)
        capped = NetworkExecutor(
            cloud, CloudQCScheduler(max_redundancy=1), epr_success_probability=0.2
        )
        redundant_mean = sum(
            redundant.execute_single(circuit, {0: 0, 1: 1}, seed=s).completion_time
            for s in range(8)
        )
        capped_mean = sum(
            capped.execute_single(circuit, {0: 0, 1: 1}, seed=s).completion_time
            for s in range(8)
        )
        assert redundant_mean < capped_mean

    def test_seeded_execution_is_reproducible(self, default_cloud, knn_circuit):
        from repro.placement import CloudQCPlacement

        placement = CloudQCPlacement().place(knn_circuit, default_cloud, seed=1)
        executor = NetworkExecutor(default_cloud, CloudQCScheduler())
        a = executor.execute_single(knn_circuit, placement.mapping, seed=9)
        b = executor.execute_single(knn_circuit, placement.mapping, seed=9)
        assert a.completion_time == b.completion_time


class TestMultiJobExecution:
    def test_competing_jobs_share_communication_qubits(self, two_qpu_cloud):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        jobs = [
            ScheduledJob(f"job-{i}", circuit, {0: 0, 1: 1}) for i in range(4)
        ]
        executor = NetworkExecutor(two_qpu_cloud, AverageScheduler())
        results = executor.execute(jobs, seed=1)
        assert len(results) == 4
        # Only 2 communication qubits per QPU: four single-gate jobs cannot all
        # finish in the first round.
        finish_times = sorted(r.completion_time for r in results.values())
        assert finish_times[-1] > finish_times[0]

    def test_mean_completion_time_helper(self, two_qpu_cloud, remote_pair_circuit):
        executor = NetworkExecutor(two_qpu_cloud, CloudQCScheduler())
        results = executor.execute(
            [ScheduledJob("a", remote_pair_circuit, {0: 0, 1: 1})], seed=1
        )
        assert mean_completion_time(results) == pytest.approx(16.0)
        assert mean_completion_time({}) == 0.0

    def test_greedy_starves_competitors(self):
        # Two chains of remote gates competing for one communication qubit pair.
        topology = CloudTopology.line(2)
        cloud = QuantumCloud(
            topology, communication_qubits_per_qpu=1, epr_success_probability=1.0
        )
        chain = QuantumCircuit(2)
        for _ in range(3):
            chain.cx(0, 1)
        jobs = [
            ScheduledJob("long", chain, {0: 0, 1: 1}),
            ScheduledJob("short", chain, {0: 0, 1: 1}),
        ]
        greedy_results = NetworkExecutor(cloud, GreedyScheduler()).execute(jobs, seed=1)
        # With a single pair per round the two jobs' six gates serialise.
        assert max(r.epr_rounds for r in greedy_results.values()) == 6
