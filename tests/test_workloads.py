"""Tests for the multi-tenant workload generators."""

import pytest

from repro.multitenant import (
    TRACE_CIRCUIT_POOL,
    WORKLOADS,
    generate_batch,
    generate_batches,
    generate_cluster_trace,
    workload_circuits,
    workload_names,
)


class TestWorkloadDefinitions:
    def test_four_workloads_defined(self):
        assert set(workload_names()) == {"mixed", "qft", "qugan", "arithmetic"}

    def test_mixed_contents_match_paper(self):
        assert set(workload_circuits("mixed")) == {
            "knn_n129",
            "qugan_n111",
            "qugan_n71",
            "qft_n63",
            "multiplier_n45",
            "multiplier_n75",
        }

    def test_qft_workload_sizes(self):
        assert workload_circuits("qft") == ["qft_n29", "qft_n63", "qft_n100"]

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            workload_circuits("nope")

    def test_workload_circuits_returns_copy(self):
        names = workload_circuits("qugan")
        names.append("bogus")
        assert "bogus" not in WORKLOADS["qugan"]


class TestBatchGeneration:
    def test_batch_size_and_membership(self):
        batch = generate_batch("qugan", batch_size=6, seed=1)
        assert len(batch) == 6
        allowed = set(workload_circuits("qugan"))
        assert all(circuit.name in allowed for circuit in batch)

    def test_batches_are_seeded(self):
        a = generate_batch("arithmetic", batch_size=5, seed=3)
        b = generate_batch("arithmetic", batch_size=5, seed=3)
        assert [c.name for c in a] == [c.name for c in b]

    def test_different_seeds_differ(self):
        a = generate_batch("mixed", batch_size=10, seed=1)
        b = generate_batch("mixed", batch_size=10, seed=2)
        assert [c.name for c in a] != [c.name for c in b]

    def test_explicit_name_pool(self):
        batch = generate_batch("mixed", batch_size=4, seed=1, names=["qft_n29"])
        assert all(circuit.name == "qft_n29" for circuit in batch)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            generate_batch("qft", batch_size=0)

    def test_generate_batches_count(self):
        batches = generate_batches("qugan", num_batches=3, batch_size=4, seed=5)
        assert len(batches) == 3
        assert all(len(batch) == 4 for batch in batches)

    def test_generate_batches_invalid_count(self):
        with pytest.raises(ValueError):
            generate_batches("qugan", num_batches=0)

    def test_circuits_are_cached_instances(self):
        a = generate_batch("qugan", batch_size=3, seed=1)
        b = generate_batch("qugan", batch_size=3, seed=1)
        by_name_a = {c.name: c for c in a}
        by_name_b = {c.name: c for c in b}
        for name in by_name_a:
            assert by_name_a[name] is by_name_b[name]


class TestClusterTrace:
    def test_trace_is_deterministic(self):
        a = generate_cluster_trace(50, num_tenants=10, seed=4)
        b = generate_cluster_trace(50, num_tenants=10, seed=4)
        assert a.arrival_times == b.arrival_times
        assert a.tenant_ids == b.tenant_ids
        assert [c.name for c in a.circuits] == [c.name for c in b.circuits]

    def test_trace_shape_and_ordering(self):
        trace = generate_cluster_trace(200, num_tenants=50, seed=1)
        assert len(trace) == 200
        assert len(trace.arrival_times) == len(trace.circuits) == 200
        assert len(trace.tenant_ids) == 200
        assert trace.arrival_times[0] == 0.0  # rebased via trace_arrivals
        assert trace.arrival_times == sorted(trace.arrival_times)
        assert all(0 <= t < 50 for t in trace.tenant_ids)
        assert 1 <= trace.num_tenants <= 50

    def test_job_sizes_are_heavy_tailed(self):
        trace = generate_cluster_trace(2000, num_tenants=100, seed=2)
        names = [c.name for c in trace.circuits]
        smallest = TRACE_CIRCUIT_POOL[0]
        # The smallest circuit dominates; every name is from the pool.
        assert names.count(smallest) > len(names) / 3
        assert set(names) <= set(TRACE_CIRCUIT_POOL)
        assert len(set(names)) > 1

    def test_diurnal_modulation_changes_local_density(self):
        # With strong modulation, arrivals cluster around rate peaks: the
        # count in the busiest period-sized window far exceeds the quietest.
        trace = generate_cluster_trace(
            3000,
            num_tenants=10,
            base_rate=1.0,
            diurnal_amplitude=0.9,
            diurnal_period=1000.0,
            seed=7,
        )
        times = trace.arrival_times
        window = 250.0
        counts = []
        edge = 0.0
        while edge < times[-1]:
            counts.append(sum(1 for t in times if edge <= t < edge + window))
            edge += window
        assert max(counts) > 2 * (min(counts) + 1)

    def test_custom_pool(self):
        trace = generate_cluster_trace(30, num_tenants=5, seed=1, names=["ghz_n4"])
        assert {c.name for c in trace.circuits} == {"ghz_n4"}

    def test_empty_trace(self):
        trace = generate_cluster_trace(0)
        assert len(trace) == 0
        assert trace.arrival_times == []
        assert trace.num_tenants == 0

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            generate_cluster_trace(-1)
        with pytest.raises(ValueError):
            generate_cluster_trace(10, num_tenants=0)
        with pytest.raises(ValueError):
            generate_cluster_trace(10, base_rate=0.0)
        with pytest.raises(ValueError):
            generate_cluster_trace(10, diurnal_amplitude=1.0)
        with pytest.raises(ValueError):
            generate_cluster_trace(10, diurnal_amplitude=-0.1)
        with pytest.raises(ValueError):
            generate_cluster_trace(10, diurnal_period=0.0)
        with pytest.raises(ValueError):
            generate_cluster_trace(10, size_tail=0.0)
        with pytest.raises(ValueError):
            generate_cluster_trace(10, tenant_skew=-1.0)
        with pytest.raises(ValueError):
            generate_cluster_trace(10, names=[])


class TestAnchorBurstTrace:
    def test_shape_and_ordering(self):
        from repro.multitenant import generate_anchor_burst_trace

        trace = generate_anchor_burst_trace(3, 4)
        assert len(trace) == 3 * (1 + 4)
        assert trace.arrival_times == sorted(trace.arrival_times)
        # Each cycle leads with the anchor (tenant 0), then the fillers.
        assert trace.tenant_ids[:5] == [0, 1, 2, 3, 4]
        names = [c.name for c in trace.circuits[:5]]
        assert names == ["ghz_n51", "ghz_n9", "ghz_n9", "ghz_n9", "ghz_n9"]

    def test_deterministic_without_rng(self):
        from repro.multitenant import generate_anchor_burst_trace

        a = generate_anchor_burst_trace(2, 3)
        b = generate_anchor_burst_trace(2, 3)
        assert a.arrival_times == b.arrival_times
        assert [c.name for c in a.circuits] == [c.name for c in b.circuits]

    def test_empty_and_validation(self):
        from repro.multitenant import generate_anchor_burst_trace

        assert len(generate_anchor_burst_trace(0, 5)) == 0
        with pytest.raises(ValueError):
            generate_anchor_burst_trace(-1, 5)
        with pytest.raises(ValueError):
            generate_anchor_burst_trace(1, -1)
        with pytest.raises(ValueError):
            generate_anchor_burst_trace(1, 1, num_qpus=0)
        with pytest.raises(ValueError):
            generate_anchor_burst_trace(1, 1, burst_fraction=0.0)
        with pytest.raises(ValueError):
            generate_anchor_burst_trace(1, 1, period_factor=0.5)
