"""Tests for the multi-tenant workload generators."""

import pytest

from repro.multitenant import (
    WORKLOADS,
    generate_batch,
    generate_batches,
    workload_circuits,
    workload_names,
)


class TestWorkloadDefinitions:
    def test_four_workloads_defined(self):
        assert set(workload_names()) == {"mixed", "qft", "qugan", "arithmetic"}

    def test_mixed_contents_match_paper(self):
        assert set(workload_circuits("mixed")) == {
            "knn_n129",
            "qugan_n111",
            "qugan_n71",
            "qft_n63",
            "multiplier_n45",
            "multiplier_n75",
        }

    def test_qft_workload_sizes(self):
        assert workload_circuits("qft") == ["qft_n29", "qft_n63", "qft_n100"]

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            workload_circuits("nope")

    def test_workload_circuits_returns_copy(self):
        names = workload_circuits("qugan")
        names.append("bogus")
        assert "bogus" not in WORKLOADS["qugan"]


class TestBatchGeneration:
    def test_batch_size_and_membership(self):
        batch = generate_batch("qugan", batch_size=6, seed=1)
        assert len(batch) == 6
        allowed = set(workload_circuits("qugan"))
        assert all(circuit.name in allowed for circuit in batch)

    def test_batches_are_seeded(self):
        a = generate_batch("arithmetic", batch_size=5, seed=3)
        b = generate_batch("arithmetic", batch_size=5, seed=3)
        assert [c.name for c in a] == [c.name for c in b]

    def test_different_seeds_differ(self):
        a = generate_batch("mixed", batch_size=10, seed=1)
        b = generate_batch("mixed", batch_size=10, seed=2)
        assert [c.name for c in a] != [c.name for c in b]

    def test_explicit_name_pool(self):
        batch = generate_batch("mixed", batch_size=4, seed=1, names=["qft_n29"])
        assert all(circuit.name == "qft_n29" for circuit in batch)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            generate_batch("qft", batch_size=0)

    def test_generate_batches_count(self):
        batches = generate_batches("qugan", num_batches=3, batch_size=4, seed=5)
        assert len(batches) == 3
        assert all(len(batch) == 4 for batch in batches)

    def test_generate_batches_invalid_count(self):
        with pytest.raises(ValueError):
            generate_batches("qugan", num_batches=0)

    def test_circuits_are_cached_instances(self):
        a = generate_batch("qugan", batch_size=3, seed=1)
        b = generate_batch("qugan", batch_size=3, seed=1)
        by_name_a = {c.name: c for c in a}
        by_name_b = {c.name: c for c in b}
        for name in by_name_a:
            assert by_name_a[name] is by_name_b[name]
