"""Property tests for the byte-addressable trace cursor (seek/tell)."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multitenant import (
    TraceCursor,
    TraceFormatError,
    TraceReader,
    TraceRecord,
    write_trace,
)

CIRCUITS = ["ghz_n5", "ghz_n9", "qft_n10"]
TENANTS = [None, 0, 1, "alice"]


@st.composite
def traces(draw, max_records=25):
    count = draw(st.integers(min_value=1, max_value=max_records))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            min_size=count,
            max_size=count,
        )
    )
    records, arrival = [], 0.0
    for gap in gaps:
        arrival += gap
        records.append(
            TraceRecord(
                arrival_time=arrival,
                circuit=draw(st.sampled_from(CIRCUITS)),
                tenant=draw(st.sampled_from(TENANTS)),
                priority=draw(st.sampled_from([None, 1.0, 2.5])),
                deadline=draw(st.sampled_from([None, arrival + 100.0])),
            )
        )
    return records


def write_tmp(tmp_path, records, fmt):
    path = str(tmp_path / f"trace.{'jsonl' if fmt == 'jsonl' else 'csv'}")
    write_trace(path, records, format=fmt)
    return path


class TestCursorEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(records=traces(), data=st.data())
    @pytest.mark.parametrize("fmt", ["jsonl", "csv"])
    def test_seek_then_read_equals_read_then_skip(
        self, tmp_path_factory, fmt, records, data
    ):
        """Resuming at tell() yields exactly the not-yet-read suffix."""
        tmp_path = tmp_path_factory.mktemp("cursor")
        path = write_tmp(tmp_path, records, fmt)
        reader = TraceReader(path)
        skip = data.draw(
            st.integers(min_value=0, max_value=len(records)), label="skip"
        )

        first = reader.cursor()
        consumed = [next(first) for _ in range(skip)]
        position = dict(
            offset=first.tell(),
            index=first.index,
            line_no=first.line_no,
            previous=first.previous_arrival,
            first=first.first_arrival,
        )
        expected_suffix = list(first)
        first.close()

        fresh = TraceReader(path).cursor()
        fresh.seek(
            position["offset"],
            index=position["index"],
            line_no=position["line_no"],
            previous=position["previous"],
            first=position["first"],
        )
        assert list(fresh) == expected_suffix
        fresh.close()
        assert consumed + expected_suffix == list(TraceReader(path))

    @settings(max_examples=20, deadline=None)
    @given(records=traces(), data=st.data())
    def test_seek_recovers_rebase_origin(self, tmp_path_factory, records, data):
        """A seek without first= re-probes the rebase origin from the head."""
        tmp_path = tmp_path_factory.mktemp("rebase")
        path = write_tmp(tmp_path, records, "jsonl")
        reader = TraceReader(path, start=0.0, time_scale=0.5)
        skip = data.draw(
            st.integers(min_value=1, max_value=len(records)), label="skip"
        )
        full = reader.cursor()
        for _ in range(skip):
            next(full)
        offset = full.tell()
        index = full.index
        previous = full.previous_arrival
        expected = list(full)
        full.close()

        resumed = TraceReader(path, start=0.0, time_scale=0.5).cursor()
        resumed.seek(offset, index=index, previous=previous)  # first omitted
        assert list(resumed) == expected
        resumed.close()


class TestCursorValidation:
    def _path(self, tmp_path, fmt="jsonl"):
        records = [
            TraceRecord(arrival_time=float(i), circuit="ghz_n5")
            for i in range(4)
        ]
        return write_tmp(tmp_path, records, fmt)

    def test_cursor_yields_same_records_as_iteration(self, tmp_path):
        path = self._path(tmp_path)
        assert list(TraceReader(path).cursor()) == list(TraceReader(path))

    def test_requires_path_source(self, tmp_path):
        buffer = io.StringIO()
        write_trace(buffer, [TraceRecord(0.0, "ghz_n5")], format="jsonl")
        buffer.seek(0)
        with pytest.raises(TraceFormatError, match="path"):
            TraceReader(buffer, format="jsonl").cursor()

    def test_negative_seek_rejected(self, tmp_path):
        cursor = TraceReader(self._path(tmp_path)).cursor()
        with pytest.raises(ValueError):
            cursor.seek(-1)
        cursor.close()

    def test_seek_into_header_rejected(self, tmp_path):
        path = self._path(tmp_path)
        cursor = TraceReader(path).cursor()
        start = cursor.tell()  # first record boundary
        with pytest.raises(TraceFormatError, match="header"):
            cursor.seek(start - 1)
        cursor.close()

    def test_csv_prologue_spans_two_lines(self, tmp_path):
        path = self._path(tmp_path, fmt="csv")
        cursor = TraceReader(path).cursor()
        boundary = cursor.tell()
        with open(path, "rb") as handle:
            head = handle.read(boundary).decode("utf-8")
        assert head.count("\n") == 2  # header comment + column row
        assert next(cursor).arrival_time == 0.0
        cursor.close()

    def test_tell_is_exact_record_boundary(self, tmp_path):
        path = self._path(tmp_path)
        cursor = TraceReader(path).cursor()
        next(cursor)
        offset = cursor.tell()
        with open(path, "rb") as handle:
            handle.seek(offset)
            rest = handle.read().decode("utf-8")
        assert rest.startswith('{"t": 1.0')
        cursor.close()

    def test_sortedness_checked_across_seam(self, tmp_path):
        path = self._path(tmp_path)
        cursor = TraceReader(path).cursor()
        next(cursor)
        offset = cursor.tell()
        cursor.close()
        resumed = TraceReader(path).cursor()
        # Lie about the previous arrival: the next record (t=1.0) must
        # now violate the sortedness invariant over the seam.
        resumed.seek(offset, index=1, previous=99.0)
        with pytest.raises(TraceFormatError):
            next(resumed)
        resumed.close()
