"""Tests for the extension modules: exhaustive placement, proportional scheduling,
arrival processes, ASCII plotting, and the variational circuit generators."""

import math

import numpy as np
import pytest

from repro.analysis import ascii_cdf_plot, ascii_line_plot, sparkline
from repro.circuits import InteractionGraph, QuantumCircuit
from repro.circuits.library import get_circuit, hardware_efficient_ansatz, qaoa
from repro.cloud import CloudTopology, QuantumCloud
from repro.multitenant import (
    bursty_arrivals,
    poisson_arrivals,
    trace_arrivals,
    uniform_arrivals,
)
from repro.placement import (
    CloudQCPlacement,
    ExhaustivePlacement,
    MappingError,
    get_placement_algorithm,
    optimal_communication_cost,
)
from repro.scheduling import (
    AllocationRequest,
    WeightedProportionalScheduler,
    get_scheduler,
    is_feasible,
)


@pytest.fixture
def tiny_cloud() -> QuantumCloud:
    topology = CloudTopology.line(3)
    return QuantumCloud(
        topology,
        computing_qubits_per_qpu=4,
        communication_qubits_per_qpu=2,
        epr_success_probability=0.5,
    )


class TestExhaustivePlacement:
    def test_finds_zero_cost_when_circuit_fits_one_qpu(self, tiny_cloud):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        cost, _ = optimal_communication_cost(circuit, tiny_cloud)
        assert cost == 0.0

    def test_optimal_splits_chain_at_single_edge(self, tiny_cloud):
        # 8-qubit chain on 4-qubit QPUs: the optimum cuts exactly one edge.
        circuit = QuantumCircuit(8)
        for q in range(7):
            circuit.cx(q, q + 1)
        placement = ExhaustivePlacement().place(circuit, tiny_cloud)
        assert placement.num_remote_operations() == 1
        assert placement.communication_cost(tiny_cloud) == 1.0

    def test_cloudqc_matches_optimal_on_small_chain(self, tiny_cloud):
        circuit = QuantumCircuit(8)
        for q in range(7):
            circuit.cx(q, q + 1)
        optimal_cost, _ = optimal_communication_cost(circuit, tiny_cloud)
        heuristic = CloudQCPlacement().place(circuit, tiny_cloud, seed=1)
        assert heuristic.communication_cost(tiny_cloud) == pytest.approx(optimal_cost)

    def test_heuristics_never_beat_optimal(self, tiny_cloud):
        circuit = qaoa(8, layers=1, seed=5)
        optimal_cost, _ = optimal_communication_cost(circuit, tiny_cloud)
        heuristic = CloudQCPlacement().place(circuit, tiny_cloud, seed=1)
        assert heuristic.communication_cost(tiny_cloud) >= optimal_cost - 1e-9

    def test_size_limit_enforced(self, tiny_cloud):
        with pytest.raises(MappingError):
            ExhaustivePlacement(max_qubits=4).place(QuantumCircuit(6), tiny_cloud)

    def test_registered_in_registry(self):
        assert get_placement_algorithm("exhaustive").name == "exhaustive"

    def test_capacity_respected(self, tiny_cloud):
        circuit = QuantumCircuit(10)
        for q in range(9):
            circuit.cx(q, q + 1)
        placement = ExhaustivePlacement().place(circuit, tiny_cloud)
        usage = placement.qubits_per_qpu()
        for qpu, used in usage.items():
            assert used <= tiny_cloud.qpu(qpu).computing_capacity


class TestProportionalScheduler:
    def _requests(self):
        return [
            AllocationRequest(("job", 0), 0, 1, priority=3),
            AllocationRequest(("job", 1), 0, 1, priority=0),
        ]

    def test_feasible_and_priority_weighted(self):
        capacity = {0: 4, 1: 4}
        allocation = WeightedProportionalScheduler().allocate(self._requests(), capacity)
        assert is_feasible(self._requests(), allocation, capacity)
        assert allocation[("job", 0)] >= allocation[("job", 1)]

    def test_uses_all_capacity_when_possible(self):
        capacity = {0: 5, 1: 5}
        allocation = WeightedProportionalScheduler().allocate(self._requests(), capacity)
        assert sum(allocation.values()) == 5

    def test_empty_requests(self):
        assert WeightedProportionalScheduler().allocate([], {0: 3}) == {}

    def test_registered(self):
        assert get_scheduler("proportional").name == "proportional"

    def test_invalid_offset(self):
        with pytest.raises(ValueError):
            WeightedProportionalScheduler(weight_offset=0.0)


class TestArrivalProcesses:
    def test_poisson_arrivals_are_increasing(self):
        arrivals = poisson_arrivals(50, rate=0.1, seed=1)
        assert len(arrivals) == 50
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))

    def test_poisson_mean_gap_matches_rate(self):
        arrivals = poisson_arrivals(4000, rate=0.5, seed=2)
        gaps = np.diff([0.0] + arrivals)
        assert np.mean(gaps) == pytest.approx(2.0, rel=0.1)

    def test_poisson_invalid_arguments(self):
        with pytest.raises(ValueError):
            poisson_arrivals(5, rate=0.0)
        with pytest.raises(ValueError):
            poisson_arrivals(-1, rate=1.0)

    def test_uniform_arrivals(self):
        assert uniform_arrivals(3, 10.0, start=5.0) == [5.0, 15.0, 25.0]
        with pytest.raises(ValueError):
            uniform_arrivals(3, -1.0)

    def test_bursty_arrivals_group_into_bursts(self):
        arrivals = bursty_arrivals(6, burst_size=3, burst_gap=100.0)
        assert arrivals[:3] == [0.0, 0.0, 0.0]
        assert arrivals[3:] == [100.0, 100.0, 100.0]

    def test_bursty_with_jitter_is_sorted(self):
        arrivals = bursty_arrivals(10, burst_size=4, burst_gap=50.0, jitter=1.0, seed=3)
        assert arrivals == sorted(arrivals)

    def test_trace_arrivals_rebases(self):
        # Raw epoch-style timestamps in submission order.
        trace = [1_000_000.0, 1_000_020.0, 1_000_050.0]
        assert trace_arrivals(trace) == [0.0, 20.0, 50.0]

    def test_trace_arrivals_scales_and_offsets(self):
        assert trace_arrivals([100.0, 101.0, 104.0], start=5.0, time_scale=10.0) == [
            5.0,
            15.0,
            45.0,
        ]

    def test_trace_arrivals_rejects_unsorted(self):
        # Out-of-order timestamps are a parsing bug upstream, not a workload.
        with pytest.raises(ValueError, match="not sorted"):
            trace_arrivals([1_000_050.0, 1_000_000.0, 1_000_020.0])

    def test_trace_arrivals_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            trace_arrivals([])

    def test_trace_arrivals_rejects_non_finite(self):
        with pytest.raises(ValueError, match="not finite"):
            trace_arrivals([0.0, math.nan, 2.0])
        with pytest.raises(ValueError, match="not finite"):
            trace_arrivals([0.0, math.inf])

    def test_trace_arrivals_edge_cases(self):
        with pytest.raises(ValueError):
            trace_arrivals([1.0, 2.0], time_scale=0.0)
        with pytest.raises(ValueError):
            trace_arrivals([1.0, 2.0], time_scale=math.nan)

    def test_poisson_and_uniform_reject_non_finite_parameters(self):
        with pytest.raises(ValueError):
            poisson_arrivals(3, rate=math.nan)
        with pytest.raises(ValueError):
            poisson_arrivals(3, rate=math.inf)
        with pytest.raises(ValueError):
            uniform_arrivals(3, interval=math.nan)
        with pytest.raises(ValueError):
            uniform_arrivals(3, interval=math.inf)

    def test_arrivals_drive_the_cluster_simulator(self, default_cloud):
        from repro.circuits.library import ghz
        from repro.multitenant import MultiTenantSimulator, fifo_batch_manager
        from repro.scheduling import CloudQCScheduler

        circuits = [ghz(16), ghz(16), ghz(16)]
        arrivals = poisson_arrivals(3, rate=0.01, seed=4)
        simulator = MultiTenantSimulator(
            default_cloud,
            placement_algorithm=CloudQCPlacement(),
            network_scheduler=CloudQCScheduler(),
            batch_manager=fifo_batch_manager(),
        )
        results = simulator.run_stream(circuits, arrivals, seed=1)
        assert len(results) == 3
        assert all(r.placement_time >= r.arrival_time for r in results)


class TestPlotting:
    def test_line_plot_contains_axes_and_legend(self):
        text = ascii_line_plot({"a": [1, 2, 3], "b": [3, 2, 1]}, [0, 1, 2], title="t")
        assert "t" in text
        assert "legend:" in text and "o=a" in text
        assert "x: 0" in text

    def test_line_plot_handles_nan_and_empty(self):
        assert ascii_line_plot({}, []) == ""
        text = ascii_line_plot({"a": [float("nan"), 2.0]}, [0, 1])
        assert "legend" in text

    def test_cdf_plot_renders(self):
        text = ascii_cdf_plot({"m": [1.0, 2.0, 5.0, 10.0]}, width=20, height=5)
        assert "legend" in text

    def test_sparkline_length_and_range(self):
        line = sparkline([1, 2, 3, 4, 5], width=5)
        assert len(line) == 5
        assert line[0] != line[-1]
        assert sparkline([]) == ""


class TestVariationalCircuits:
    def test_qaoa_structure(self):
        circuit = qaoa(12, layers=2, seed=3)
        assert circuit.num_qubits == 12
        # Two layers touch the same edges twice.
        interactions = circuit.two_qubit_interactions()
        assert all(weight == 2 for weight in interactions.values())

    def test_qaoa_invalid_arguments(self):
        with pytest.raises(ValueError):
            qaoa(1)
        with pytest.raises(ValueError):
            qaoa(4, layers=0)
        with pytest.raises(ValueError):
            qaoa(4, edge_probability=2.0)

    def test_hea_entanglers(self):
        linear = hardware_efficient_ansatz(8, layers=2, entangler="linear")
        circular = hardware_efficient_ansatz(8, layers=2, entangler="circular")
        assert circular.num_two_qubit_gates == linear.num_two_qubit_gates + 2
        with pytest.raises(ValueError):
            hardware_efficient_ansatz(8, entangler="full")

    def test_registry_names(self):
        assert get_circuit("qaoa_n10").num_qubits == 10
        assert get_circuit("hea_n10").num_qubits == 10

    def test_qaoa_placement_pipeline(self, default_cloud):
        circuit = qaoa(40, layers=1, seed=9)
        placement = CloudQCPlacement().place(circuit, default_cloud, seed=1)
        assert placement.respects_capacity(default_cloud)
        interaction = InteractionGraph.from_circuit(circuit)
        assert placement.num_remote_operations() <= interaction.total_weight()
