"""Tests for the qubit interaction graph."""

import pytest

from repro.circuits import InteractionGraph, QuantumCircuit


@pytest.fixture
def triangle_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(3)
    circuit.cx(0, 1)
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    circuit.cx(0, 2)
    return circuit


class TestConstruction:
    def test_weights_count_repeated_gates(self, triangle_circuit):
        graph = InteractionGraph.from_circuit(triangle_circuit)
        assert graph.weight(0, 1) == 2
        assert graph.weight(1, 2) == 1
        assert graph.weight(0, 2) == 1
        assert graph.weight(1, 0) == 2  # undirected

    def test_missing_edge_weight_is_zero(self, triangle_circuit):
        graph = InteractionGraph.from_circuit(triangle_circuit)
        assert graph.weight(0, 0) == 0

    def test_isolated_qubits_present(self):
        circuit = QuantumCircuit(5)
        circuit.cx(0, 1)
        graph = InteractionGraph.from_circuit(circuit)
        assert graph.num_qubits == 5
        assert graph.neighbors(4) == []

    def test_total_weight(self, triangle_circuit):
        graph = InteractionGraph.from_circuit(triangle_circuit)
        assert graph.total_weight() == 4

    def test_degree_weight(self, triangle_circuit):
        graph = InteractionGraph.from_circuit(triangle_circuit)
        assert graph.degree_weight(0) == 3
        assert graph.degree_weight(1) == 3
        assert graph.degree_weight(2) == 2


class TestCut:
    def test_cut_weight_counts_cross_edges(self, triangle_circuit):
        graph = InteractionGraph.from_circuit(triangle_circuit)
        assignment = {0: 0, 1: 0, 2: 1}
        assert graph.cut_weight(assignment) == 2  # (1,2) and (0,2)

    def test_cut_weight_zero_for_single_part(self, triangle_circuit):
        graph = InteractionGraph.from_circuit(triangle_circuit)
        assert graph.cut_weight({0: 0, 1: 0, 2: 0}) == 0


class TestCenterAndQuotient:
    def test_graph_center_of_a_path(self):
        circuit = QuantumCircuit(5)
        for q in range(4):
            circuit.cx(q, q + 1)
        graph = InteractionGraph.from_circuit(circuit)
        assert graph.graph_center() == 2

    def test_graph_center_of_empty_graph_raises(self):
        with pytest.raises(ValueError):
            InteractionGraph(0).graph_center()

    def test_quotient_graph_aggregates_cut_weight(self, triangle_circuit):
        graph = InteractionGraph.from_circuit(triangle_circuit)
        quotient = graph.quotient_graph({0: 0, 1: 0, 2: 1})
        assert quotient[0][1]["weight"] == 2
        assert not quotient.has_edge(0, 0)

    def test_quotient_graph_has_all_parts_as_nodes(self, triangle_circuit):
        graph = InteractionGraph.from_circuit(triangle_circuit)
        quotient = graph.quotient_graph({0: 0, 1: 1, 2: 2})
        assert set(quotient.nodes()) == {0, 1, 2}

    def test_subgraph_restricts_nodes(self, triangle_circuit):
        graph = InteractionGraph.from_circuit(triangle_circuit)
        sub = graph.subgraph([0, 1])
        assert sub.weight(0, 1) == 2
        assert sub.weight(1, 2) == 0

    def test_to_networkx_returns_copy(self, triangle_circuit):
        graph = InteractionGraph.from_circuit(triangle_circuit)
        nx_graph = graph.to_networkx()
        nx_graph.remove_edge(0, 1)
        assert graph.weight(0, 1) == 2
