"""Tests for the discrete-event simulation engine."""

import pytest

from repro.sim import EventLoop, SimulationError


class TestScheduling:
    def test_events_run_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(5.0, lambda env: order.append("late"))
        loop.schedule(1.0, lambda env: order.append("early"))
        loop.run()
        assert order == ["early", "late"]

    def test_ties_broken_by_insertion_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(1.0, lambda env: order.append("first"))
        loop.schedule(1.0, lambda env: order.append("second"))
        loop.run()
        assert order == ["first", "second"]

    def test_now_advances_to_event_time(self):
        loop = EventLoop()
        seen = []
        loop.schedule(3.5, lambda env: seen.append(env.now))
        final = loop.run()
        assert seen == [3.5]
        assert final == 3.5

    def test_schedule_at_absolute_time(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(2.0, lambda env: seen.append(env.now))
        loop.run()
        assert seen == [2.0]

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(SimulationError):
            loop.schedule(-1.0, lambda env: None)

    def test_schedule_in_the_past_rejected(self):
        loop = EventLoop()
        loop.schedule(5.0, lambda env: None)
        loop.run()
        with pytest.raises(SimulationError):
            loop.schedule_at(1.0, lambda env: None)

    def test_events_can_schedule_more_events(self):
        loop = EventLoop()
        times = []

        def chain(env):
            times.append(env.now)
            if len(times) < 3:
                env.schedule(1.0, chain)

        loop.schedule(1.0, chain)
        loop.run()
        assert times == [1.0, 2.0, 3.0]


class TestControl:
    def test_run_until_stops_early(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda env: seen.append(1))
        loop.schedule(10.0, lambda env: seen.append(10))
        loop.run(until=5.0)
        assert seen == [1]
        assert loop.now == 5.0
        assert loop.pending() == 1

    def test_run_until_in_the_past_rejected(self):
        # Regression: run(until=t) with t < now used to silently rewind the
        # simulation clock to t; it must raise and leave the clock alone.
        loop = EventLoop()
        loop.schedule(5.0, lambda env: None)
        loop.run()
        assert loop.now == 5.0
        loop.schedule(5.0, lambda env: None)  # pending event at t=10
        with pytest.raises(SimulationError):
            loop.run(until=1.0)
        assert loop.now == 5.0
        assert loop.pending() == 1

    def test_run_until_in_the_past_rejected_with_empty_queue(self):
        loop = EventLoop()
        loop.schedule(5.0, lambda env: None)
        loop.run()
        with pytest.raises(SimulationError):
            loop.run(until=1.0)
        assert loop.now == 5.0

    def test_run_until_with_empty_queue_leaves_clock_untouched(self):
        # A future `until` with nothing queued must not advance the clock:
        # no event ran, so no simulation time passed.
        loop = EventLoop()
        assert loop.run(until=100.0) == 0.0
        assert loop.now == 0.0
        loop.schedule(2.0, lambda env: None)
        loop.run()
        assert loop.run(until=100.0) == 2.0
        assert loop.now == 2.0

    def test_run_until_now_is_allowed(self):
        loop = EventLoop()
        loop.schedule(3.0, lambda env: None)
        loop.run()
        assert loop.run(until=loop.now) == 3.0

    def test_cancelled_events_do_not_run(self):
        loop = EventLoop()
        seen = []
        handle = loop.schedule(1.0, lambda env: seen.append("cancelled"))
        loop.schedule(2.0, lambda env: seen.append("kept"))
        handle.cancel()
        loop.run()
        assert seen == ["kept"]
        assert handle.cancelled

    def test_step_returns_false_when_empty(self):
        assert EventLoop().step() is False

    def test_max_events_guard(self):
        loop = EventLoop()

        def forever(env):
            env.schedule(1.0, forever)

        loop.schedule(1.0, forever)
        with pytest.raises(SimulationError):
            loop.run(max_events=10)

    def test_peek_skips_cancelled(self):
        loop = EventLoop()
        handle = loop.schedule(1.0, lambda env: None)
        loop.schedule(2.0, lambda env: None)
        handle.cancel()
        assert loop.peek() == 2.0

    def test_processed_event_count(self):
        loop = EventLoop()
        for delay in (1.0, 2.0, 3.0):
            loop.schedule(delay, lambda env: None)
        loop.run()
        assert loop.processed_events == 3


class TestReschedule:
    def test_reschedule_moves_event(self):
        loop = EventLoop()
        seen = []
        handle = loop.schedule(5.0, lambda env: seen.append(env.now))
        moved = loop.reschedule(handle, 2.0)
        loop.run()
        assert seen == [2.0]
        assert handle.cancelled
        assert not moved.cancelled

    def test_reschedule_can_postpone(self):
        loop = EventLoop()
        seen = []
        handle = loop.schedule(1.0, lambda env: seen.append(env.now))
        loop.reschedule(handle, 9.0)
        loop.run()
        assert seen == [9.0]

    def test_reschedule_cancelled_event_rejected(self):
        loop = EventLoop()
        handle = loop.schedule(1.0, lambda env: None)
        handle.cancel()
        with pytest.raises(SimulationError):
            loop.reschedule(handle, 2.0)

    def test_reschedule_executed_event_rejected(self):
        loop = EventLoop()
        handle = loop.schedule(1.0, lambda env: None)
        loop.run()
        with pytest.raises(SimulationError):
            loop.reschedule(handle, 2.0)


class TestRepeating:
    def test_repeating_event_fires_every_interval(self):
        loop = EventLoop()
        times = []
        handle = loop.schedule_repeating(2.0, lambda env: times.append(env.now))
        loop.run(until=7.0)
        assert times == [2.0, 4.0, 6.0]
        assert handle.next_time == 8.0

    def test_repeating_event_start_delay(self):
        loop = EventLoop()
        times = []
        loop.schedule_repeating(5.0, lambda env: times.append(env.now), start_delay=0.5)
        loop.run(until=11.0)
        assert times == [0.5, 5.5, 10.5]

    def test_cancel_stops_future_firings(self):
        loop = EventLoop()
        times = []
        handle = loop.schedule_repeating(1.0, lambda env: times.append(env.now))

        def stop(env):
            handle.cancel()

        loop.schedule(2.5, stop)
        loop.run()
        assert times == [1.0, 2.0]
        assert handle.cancelled
        assert handle.next_time is None

    def test_cancel_from_inside_callback(self):
        loop = EventLoop()
        times = []
        handle = loop.schedule_repeating(
            1.0, lambda env: (times.append(env.now), handle.cancel())
        )
        loop.run()
        assert times == [1.0]

    def test_non_positive_interval_rejected(self):
        loop = EventLoop()
        with pytest.raises(SimulationError):
            loop.schedule_repeating(0.0, lambda env: None)


class TestTiers:
    def test_same_time_runs_ascending_tier(self):
        loop = EventLoop()
        order = []
        loop.schedule(1.0, lambda env: order.append("default"))
        loop.schedule(1.0, lambda env: order.append("late"), tier=1)
        loop.schedule(1.0, lambda env: order.append("early"), tier=-1)
        loop.run()
        assert order == ["early", "default", "late"]

    def test_insertion_order_within_a_tier(self):
        loop = EventLoop()
        order = []
        for index in range(4):
            loop.schedule(2.0, lambda env, i=index: order.append(i), tier=-1)
        loop.run()
        assert order == [0, 1, 2, 3]

    def test_time_beats_tier(self):
        loop = EventLoop()
        order = []
        loop.schedule(1.0, lambda env: order.append("sooner"), tier=5)
        loop.schedule(2.0, lambda env: order.append("later"), tier=-5)
        loop.run()
        assert order == ["sooner", "later"]

    def test_negative_tier_event_scheduled_mid_run_preempts_same_time(self):
        # The lazy trace-arrival cursor pattern: an event scheduled *during*
        # the run (so with a high sequence number) must still beat tier-0
        # events at the same timestamp.
        loop = EventLoop()
        order = []
        loop.schedule(1.0, lambda env: order.append("tick-a"))

        def plant(env):
            env.schedule_at(3.0, lambda e: order.append("arrival"), tier=-1)

        loop.schedule(2.0, plant)
        loop.schedule(3.0, lambda env: order.append("tick-b"))
        loop.run()
        assert order == ["tick-a", "arrival", "tick-b"]

    def test_reschedule_preserves_tier(self):
        loop = EventLoop()
        order = []
        handle = loop.schedule(5.0, lambda env: order.append("moved"), tier=-1)
        loop.schedule(3.0, lambda env: order.append("fixed"))
        loop.schedule(0.0, lambda env: None)  # force a step first

        def move(env):
            env.reschedule(handle, 3.0)

        loop.schedule(1.0, move)
        loop.run()
        assert order == ["moved", "fixed"]


class TestScheduleAtExactness:
    # A float pair where now + (target - now) lands one ulp off target: the
    # exact trap schedule_at must dodge to keep lazily scheduled arrivals
    # bit-aligned with upfront ones.
    NOW = 0.8615060406187329
    TARGET = 3.9896391258994854

    def test_absolute_time_is_stored_exactly(self):
        # now + (time - now) can differ from `time` by one ulp; schedule_at
        # must store the requested instant bit-for-bit, or events scheduled
        # for the same absolute time from different "now"s would misorder.
        assert self.NOW + (self.TARGET - self.NOW) != self.TARGET
        loop = EventLoop()
        times = []
        loop.schedule(self.NOW, lambda env: env.schedule_at(
            self.TARGET, lambda e: times.append(e.now)
        ))
        loop.run()
        assert times == [self.TARGET]

    def test_same_instant_from_different_nows_ties_on_tier(self):
        loop = EventLoop()
        order = []
        target = self.TARGET
        loop.schedule_at(target, lambda env: order.append("upfront"), tier=-1)
        loop.schedule(self.NOW, lambda env: env.schedule_at(
            target, lambda e: order.append("lazy"), tier=-1
        ))
        loop.run()
        assert order == ["upfront", "lazy"]
