"""Tests for the multilevel k-way graph partitioner and its metrics."""

import networkx as nx
import numpy as np
import pytest

from repro.circuits import InteractionGraph
from repro.circuits.library import ghz, qft
from repro.partition import (
    PartitionError,
    assignment_to_parts,
    coarsen,
    contract,
    edge_cut,
    heavy_edge_matching,
    imbalance,
    is_valid_partition,
    part_weights,
    partition_graph,
    parts_to_assignment,
    rebalance,
    refine,
)


def two_cliques(size: int = 6, bridge_weight: float = 1.0) -> nx.Graph:
    graph = nx.Graph()
    for base in (0, size):
        for i in range(base, base + size):
            for j in range(i + 1, base + size):
                graph.add_edge(i, j, weight=5.0)
    graph.add_edge(0, size, weight=bridge_weight)
    return graph


class TestMetrics:
    def test_edge_cut_counts_weights(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=3.0)
        graph.add_edge(1, 2, weight=2.0)
        assert edge_cut(graph, {0: 0, 1: 0, 2: 1}) == 2.0
        assert edge_cut(graph, {0: 0, 1: 1, 2: 0}) == 5.0

    def test_part_weights_and_imbalance(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        assignment = {0: 0, 1: 0, 2: 0, 3: 1}
        weights = part_weights(graph, assignment, 2)
        assert weights == {0: 3.0, 1: 1.0}
        assert imbalance(graph, assignment, 2) == pytest.approx(0.5)

    def test_perfectly_balanced_imbalance_is_zero(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        assert imbalance(graph, {0: 0, 1: 0, 2: 1, 3: 1}, 2) == pytest.approx(0.0)

    def test_is_valid_partition(self):
        graph = nx.path_graph(3)
        assert is_valid_partition(graph, {0: 0, 1: 1, 2: 0}, 2)
        assert not is_valid_partition(graph, {0: 0, 1: 1}, 2)
        assert not is_valid_partition(graph, {0: 0, 1: 5, 2: 0}, 2)

    def test_parts_assignment_round_trip(self):
        parts = {0: {1, 2}, 1: {3}}
        assignment = parts_to_assignment(parts)
        assert assignment_to_parts(assignment) == parts


class TestCoarsening:
    def test_heavy_edge_matching_is_a_matching(self):
        graph = two_cliques()
        rng = np.random.default_rng(0)
        matching = heavy_edge_matching(graph, rng)
        seen = set()
        for a, b in matching:
            assert a not in seen and b not in seen
            seen.add(a)
            seen.add(b)

    def test_contract_preserves_total_node_weight(self):
        graph = two_cliques()
        rng = np.random.default_rng(0)
        level = contract(graph, heavy_edge_matching(graph, rng))
        total = sum(d.get("weight", 1.0) for _, d in level.graph.nodes(data=True))
        assert total == graph.number_of_nodes()

    def test_coarsen_reduces_size(self):
        graph = two_cliques(size=10)
        levels = coarsen(graph, target_size=5, seed=1)
        assert levels
        assert levels[-1].graph.number_of_nodes() < graph.number_of_nodes()

    def test_coarsen_projections_cover_previous_level(self):
        graph = two_cliques(size=8)
        levels = coarsen(graph, target_size=4, seed=1)
        current = graph
        for level in levels:
            assert set(level.projection) == set(current.nodes())
            current = level.graph


class TestRefinement:
    def test_refine_improves_or_keeps_cut(self):
        graph = two_cliques()
        bad = {node: node % 2 for node in graph.nodes()}
        better = refine(graph, bad, 2, max_part_weight=7.0, seed=0)
        assert edge_cut(graph, better) <= edge_cut(graph, bad)

    def test_refine_respects_balance_cap(self):
        graph = two_cliques()
        assignment = {node: (0 if node < 6 else 1) for node in graph.nodes()}
        refined = refine(graph, assignment, 2, max_part_weight=7.0, seed=0)
        weights = part_weights(graph, refined, 2)
        assert max(weights.values()) <= 7.0

    def test_rebalance_fixes_overloaded_parts(self):
        graph = nx.path_graph(6)
        assignment = {node: 0 for node in graph.nodes()}
        fixed = rebalance(graph, assignment, 2, max_part_weight=4.0)
        weights = part_weights(graph, fixed, 2)
        assert max(weights.values()) <= 4.0


class TestPartitionGraph:
    def test_two_cliques_are_separated(self):
        graph = two_cliques()
        assignment = partition_graph(graph, 2, imbalance=0.1, seed=3)
        # Each clique should end up in one part: the cut is just the bridge.
        assert edge_cut(graph, assignment) == pytest.approx(1.0)

    def test_single_part_is_trivial(self):
        graph = two_cliques()
        assignment = partition_graph(graph, 1)
        assert set(assignment.values()) == {0}

    def test_all_nodes_assigned_and_parts_in_range(self):
        graph = nx.erdos_renyi_graph(40, 0.2, seed=4)
        nx.set_edge_attributes(graph, 1.0, "weight")
        assignment = partition_graph(graph, 5, imbalance=0.2, seed=1)
        assert is_valid_partition(graph, assignment, 5)

    def test_balance_constraint_respected(self):
        graph = nx.erdos_renyi_graph(60, 0.15, seed=5)
        nx.set_edge_attributes(graph, 1.0, "weight")
        assignment = partition_graph(graph, 4, imbalance=0.1, seed=1)
        weights = part_weights(graph, assignment, 4)
        assert max(weights.values()) <= (1.1 * 60 / 4) + 1e-9

    def test_empty_graph(self):
        assert partition_graph(nx.Graph(), 3) == {}

    def test_too_many_parts_raises(self):
        graph = nx.path_graph(3)
        with pytest.raises(PartitionError):
            partition_graph(graph, 4)

    def test_invalid_arguments(self):
        graph = nx.path_graph(3)
        with pytest.raises(PartitionError):
            partition_graph(graph, 0)
        with pytest.raises(PartitionError):
            partition_graph(graph, 2, imbalance=-0.1)

    def test_ghz_chain_bisection_cut_is_one(self):
        interaction = InteractionGraph.from_circuit(ghz(32))
        assignment = partition_graph(interaction.to_networkx(), 2, seed=2)
        assert edge_cut(interaction.to_networkx(), assignment) == pytest.approx(1.0)

    def test_partition_beats_random_on_qft(self):
        interaction = InteractionGraph.from_circuit(qft(24)).to_networkx()
        assignment = partition_graph(interaction, 3, seed=2)
        rng = np.random.default_rng(0)
        random_assignment = {node: int(rng.integers(3)) for node in interaction.nodes()}
        assert edge_cut(interaction, assignment) <= edge_cut(
            interaction, random_assignment
        )

    def test_determinism_with_seed(self):
        graph = nx.erdos_renyi_graph(30, 0.2, seed=9)
        nx.set_edge_attributes(graph, 1.0, "weight")
        a = partition_graph(graph, 3, seed=11)
        b = partition_graph(graph, 3, seed=11)
        assert a == b
