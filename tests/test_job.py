"""Tests for the Job model and its ordering metric."""

import pytest

from repro.circuits import QuantumCircuit
from repro.cloud import Job, JobStatus


@pytest.fixture
def dense_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(4, name="dense")
    for _ in range(6):
        circuit.cx(0, 1)
        circuit.cx(2, 3)
    return circuit


class TestLifecycle:
    def test_initial_state(self, dense_circuit):
        job = Job(circuit=dense_circuit, arrival_time=3.0)
        assert job.status is JobStatus.PENDING
        assert job.arrival_time == 3.0
        assert job.job_completion_time is None
        assert job.placement is None

    def test_job_ids_are_unique(self, dense_circuit):
        a = Job(circuit=dense_circuit)
        b = Job(circuit=dense_circuit)
        assert a.job_id != b.job_id

    def test_placed_running_completed_flow(self, dense_circuit):
        job = Job(circuit=dense_circuit, arrival_time=1.0)
        job.mark_placed({0: 0, 1: 0, 2: 1, 3: 1})
        assert job.status is JobStatus.PLACED
        job.mark_running(2.0)
        assert job.status is JobStatus.RUNNING
        job.mark_completed(12.0)
        assert job.status is JobStatus.COMPLETED
        assert job.job_completion_time == pytest.approx(11.0)

    def test_mark_failed(self, dense_circuit):
        job = Job(circuit=dense_circuit)
        job.mark_failed()
        assert job.status is JobStatus.FAILED

    def test_qubits_per_qpu(self, dense_circuit):
        job = Job(circuit=dense_circuit)
        job.mark_placed({0: 0, 1: 0, 2: 1, 3: 2})
        assert job.qubits_per_qpu() == {0: 2, 1: 1, 2: 1}

    def test_qubits_per_qpu_without_placement(self, dense_circuit):
        assert Job(circuit=dense_circuit).qubits_per_qpu() == {}


class TestMetric:
    def test_priority_metric_formula(self, dense_circuit):
        job = Job(circuit=dense_circuit)
        expected = 12 / 4 + 4 + dense_circuit.depth()
        assert job.priority_metric() == pytest.approx(expected)

    def test_priority_metric_weights(self, dense_circuit):
        job = Job(circuit=dense_circuit)
        only_depth = job.priority_metric(
            lambda_density=0.0, lambda_qubits=0.0, lambda_depth=2.0
        )
        assert only_depth == pytest.approx(2.0 * dense_circuit.depth())

    def test_properties_delegate_to_circuit(self, dense_circuit):
        job = Job(circuit=dense_circuit)
        assert job.name == "dense"
        assert job.num_qubits == 4
        assert job.num_two_qubit_gates == 12
        assert job.depth == dense_circuit.depth()
