"""Tests for the experiment runners and table formatting used by the benchmarks."""

import math

import pytest

from repro.analysis import (
    default_cloud,
    default_placement_algorithms,
    default_schedulers,
    format_cdf_summary,
    format_series,
    format_table,
    multitenant_jct_distribution,
    multitenant_methods,
    scheduling_comparison,
    single_circuit_placement,
    sweep_communication_qubits,
    sweep_computing_qubits,
    sweep_epr_probability,
)
from repro.placement import CloudQCPlacement, RandomPlacement


class TestDefaults:
    def test_default_cloud_shape(self):
        cloud = default_cloud(seed=1)
        assert cloud.num_qpus == 20
        assert cloud.qpu(0).computing_capacity == 20

    def test_default_algorithms_and_schedulers(self):
        assert set(default_placement_algorithms()) == {
            "SA",
            "Random",
            "GA",
            "CloudQC-BFS",
            "CloudQC",
        }
        assert set(default_schedulers()) == {"CloudQC", "Average", "Random", "Greedy"}


class TestSingleCircuitRunner:
    def test_table_rows_and_columns(self):
        algorithms = {"CloudQC": CloudQCPlacement(), "Random": RandomPlacement()}
        table = single_circuit_placement(
            ["ising_n34", "cat_n65"], algorithms, cloud=default_cloud(seed=1)
        )
        assert set(table) == {"ising_n34", "cat_n65"}
        assert set(table["ising_n34"]) == {"CloudQC", "Random"}
        assert table["ising_n34"]["CloudQC"] <= table["ising_n34"]["Random"]

    def test_communication_cost_metric(self):
        algorithms = {"CloudQC": CloudQCPlacement()}
        table = single_circuit_placement(
            ["ising_n34"], algorithms, cloud=default_cloud(seed=1),
            metric="communication_cost",
        )
        assert table["ising_n34"]["CloudQC"] >= 0

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            single_circuit_placement(
                ["ising_n34"], {"CloudQC": CloudQCPlacement()}, metric="bogus"
            )

    def test_computing_qubit_sweep_marks_infeasible_points(self):
        algorithms = {"CloudQC": CloudQCPlacement()}
        series = sweep_computing_qubits(
            "cat_n65", qubit_counts=(3, 10), algorithms=algorithms, seed=1
        )
        assert math.isnan(series["CloudQC"][0])
        assert not math.isnan(series["CloudQC"][1])


class TestSchedulingRunners:
    def test_scheduling_comparison_row(self):
        table = scheduling_comparison(
            ["ising_n66"], repetitions=1, cloud=default_cloud(seed=1)
        )
        row = table["ising_n66"]
        assert set(row) == {"CloudQC", "Average", "Random", "Greedy"}
        assert all(value > 0 for value in row.values())

    def test_comm_qubit_sweep_monotone_trend(self):
        series = sweep_communication_qubits(
            "ising_n66", communication_counts=(1, 8), repetitions=2, seed=1
        )
        for values in series.values():
            assert values[1] <= values[0]

    def test_epr_probability_sweep_monotone_trend(self):
        series = sweep_epr_probability(
            "ising_n66", probabilities=(0.1, 0.9), repetitions=2, seed=1
        )
        for values in series.values():
            assert values[1] <= values[0]


class TestMultitenantRunner:
    def test_distribution_has_all_methods(self):
        distribution = multitenant_jct_distribution(
            "qugan", num_batches=1, batch_size=3, seed=1, cloud=default_cloud(seed=1)
        )
        assert set(distribution) == {"CloudQC", "CloudQC-BFS", "CloudQC-FIFO"}
        assert all(len(times) == 3 for times in distribution.values())

    def test_methods_definition(self):
        methods = multitenant_methods()
        assert methods["CloudQC-FIFO"]["batch_manager"].config.mode.value == "fifo"


class TestFormatting:
    def test_format_table_contains_values(self):
        text = format_table({"row": {"a": 1.0, "b": 2.5}}, ["a", "b"])
        assert "row" in text and "1.0" in text and "2.5" in text

    def test_format_table_missing_cell_is_nan(self):
        text = format_table({"row": {"a": 1.0}}, ["a", "b"])
        assert "nan" in text

    def test_format_series(self):
        text = format_series({"m": [1.0, 2.0]}, x_values=[5, 10], x_label="qubits")
        assert "qubits=5" in text and "qubits=10" in text

    def test_format_cdf_summary(self):
        text = format_cdf_summary({"CloudQC": [1.0, 2.0, 3.0]}, percentiles=(50,))
        assert "CloudQC" in text and "p50" in text and "mean" in text
