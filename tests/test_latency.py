"""Tests for the Table I latency model."""

import pytest

from repro.circuits import Gate
from repro.sim import DEFAULT_LATENCY, LatencyModel


class TestGateLatency:
    def test_table1_defaults(self):
        assert DEFAULT_LATENCY.single_qubit_gate == pytest.approx(0.1)
        assert DEFAULT_LATENCY.two_qubit_gate == pytest.approx(1.0)
        assert DEFAULT_LATENCY.measurement == pytest.approx(5.0)
        assert DEFAULT_LATENCY.epr_preparation == pytest.approx(10.0)

    def test_gate_latency_by_kind(self):
        assert DEFAULT_LATENCY.gate_latency(Gate("h", (0,))) == pytest.approx(0.1)
        assert DEFAULT_LATENCY.gate_latency(Gate("cx", (0, 1))) == pytest.approx(1.0)
        assert DEFAULT_LATENCY.gate_latency(Gate("measure", (0,))) == pytest.approx(5.0)

    def test_barrier_is_free(self):
        assert DEFAULT_LATENCY.gate_latency(Gate("barrier", (0,))) == 0.0

    def test_custom_model(self):
        model = LatencyModel(single_qubit_gate=0.2, epr_preparation=20.0)
        assert model.gate_latency(Gate("x", (0,))) == pytest.approx(0.2)
        assert model.remote_gate_latency() == pytest.approx(20.0 + 1.0 + 5.0)


class TestRemoteGateLatency:
    def test_single_attempt_single_hop(self):
        assert DEFAULT_LATENCY.remote_gate_latency() == pytest.approx(16.0)

    def test_attempts_scale_epr_time(self):
        assert DEFAULT_LATENCY.remote_gate_latency(epr_attempts=3) == pytest.approx(
            3 * 10 + 1 + 5
        )

    def test_hops_scale_epr_time(self):
        assert DEFAULT_LATENCY.remote_gate_latency(hops=2) == pytest.approx(
            2 * 10 + 1 + 5
        )

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            DEFAULT_LATENCY.remote_gate_latency(epr_attempts=0)
        with pytest.raises(ValueError):
            DEFAULT_LATENCY.remote_gate_latency(hops=0)

    def test_remote_gate_slower_than_local(self):
        remote = DEFAULT_LATENCY.remote_gate_latency()
        local = DEFAULT_LATENCY.gate_latency(Gate("cx", (0, 1)))
        assert remote > 10 * local


class TestExpectedRemoteLatency:
    def test_certain_success_equals_one_round(self):
        assert DEFAULT_LATENCY.expected_remote_gate_latency(1.0) == pytest.approx(16.0)

    def test_lower_probability_costs_more(self):
        fast = DEFAULT_LATENCY.expected_remote_gate_latency(0.5)
        slow = DEFAULT_LATENCY.expected_remote_gate_latency(0.1)
        assert slow > fast

    def test_parallel_attempts_reduce_expected_latency(self):
        single = DEFAULT_LATENCY.expected_remote_gate_latency(0.3, parallel_attempts=1)
        redundant = DEFAULT_LATENCY.expected_remote_gate_latency(0.3, parallel_attempts=3)
        assert redundant < single

    def test_expected_matches_geometric_mean_rounds(self):
        expected = DEFAULT_LATENCY.expected_remote_gate_latency(0.25)
        # 4 expected rounds: 1 round inside remote_gate_latency + 3 extra.
        assert expected == pytest.approx(16.0 + 3 * 10.0)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            DEFAULT_LATENCY.expected_remote_gate_latency(0.0)
        with pytest.raises(ValueError):
            DEFAULT_LATENCY.expected_remote_gate_latency(0.3, parallel_attempts=0)
