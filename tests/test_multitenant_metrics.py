"""Tests for the multi-tenant completion-time metrics."""

import pytest

from repro.multitenant import (
    CompletionStats,
    cdf_at_percentile,
    completion_cdf,
    fraction_completed_by,
    makespan,
    relative_to_baseline,
)


class TestCompletionStats:
    def test_from_times(self):
        stats = CompletionStats.from_times([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.median == pytest.approx(2.5)
        assert stats.maximum == 4.0

    def test_empty(self):
        stats = CompletionStats.from_times([])
        assert stats.count == 0
        assert stats.mean == 0.0


class TestCdf:
    def test_cdf_points_monotonic(self):
        points = completion_cdf([3.0, 1.0, 2.0])
        assert points == [(1.0, pytest.approx(1 / 3)), (2.0, pytest.approx(2 / 3)), (3.0, 1.0)]

    def test_cdf_empty(self):
        assert completion_cdf([]) == []

    def test_fraction_completed_by(self):
        times = [1.0, 2.0, 3.0, 4.0]
        assert fraction_completed_by(times, 2.5) == pytest.approx(0.5)
        assert fraction_completed_by(times, 0.5) == 0.0
        assert fraction_completed_by([], 1.0) == 0.0

    def test_cdf_at_percentile(self):
        times = list(range(1, 101))
        assert cdf_at_percentile(times, 90) == pytest.approx(90.1, abs=0.5)
        assert cdf_at_percentile([], 90) == 0.0

    def test_makespan(self):
        assert makespan([5.0, 9.0, 2.0]) == 9.0
        assert makespan([]) == 0.0


class TestRelative:
    def test_relative_to_baseline(self):
        values = {"CloudQC": 50.0, "Greedy": 100.0}
        relative = relative_to_baseline(values, "CloudQC")
        assert relative["CloudQC"] == 1.0
        assert relative["Greedy"] == 2.0

    def test_missing_baseline(self):
        with pytest.raises(KeyError):
            relative_to_baseline({"a": 1.0}, "b")

    def test_zero_baseline(self):
        with pytest.raises(ValueError):
            relative_to_baseline({"a": 0.0}, "a")
