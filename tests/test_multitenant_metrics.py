"""Tests for the multi-tenant completion-time metrics."""

import math

import numpy as np
import pytest

from repro.multitenant import (
    CompletionStats,
    JobOutcome,
    PreemptionStats,
    QueueingDelayStats,
    StreamSummary,
    TenantJobResult,
    cdf_at_percentile,
    completion_cdf,
    drop_aware_jct_percentile,
    fraction_completed_by,
    makespan,
    max_queue_depth,
    outcome_counts,
    queue_depth_timeseries,
    queueing_delays,
    rejection_rate,
    relative_to_baseline,
    total_preemptions,
    total_wasted_time,
)


class TestCompletionStats:
    def test_from_times(self):
        stats = CompletionStats.from_times([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.median == pytest.approx(2.5)
        assert stats.maximum == 4.0

    def test_empty(self):
        stats = CompletionStats.from_times([])
        assert stats.count == 0
        assert stats.mean == 0.0

    def test_numpy_array_input(self):
        # Regression: truthiness on a 2+-element numpy array raises the
        # ambiguous-truth-value ValueError; emptiness must use len().
        stats = CompletionStats.from_times(np.array([1.0, 2.0, 3.0, 4.0]))
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)

    def test_empty_numpy_array_input(self):
        stats = CompletionStats.from_times(np.array([]))
        assert stats.count == 0


class TestCdf:
    def test_cdf_points_monotonic(self):
        points = completion_cdf([3.0, 1.0, 2.0])
        assert points == [(1.0, pytest.approx(1 / 3)), (2.0, pytest.approx(2 / 3)), (3.0, 1.0)]

    def test_cdf_empty(self):
        assert completion_cdf([]) == []

    def test_fraction_completed_by(self):
        times = [1.0, 2.0, 3.0, 4.0]
        assert fraction_completed_by(times, 2.5) == pytest.approx(0.5)
        assert fraction_completed_by(times, 0.5) == 0.0
        assert fraction_completed_by([], 1.0) == 0.0

    def test_cdf_at_percentile(self):
        times = list(range(1, 101))
        assert cdf_at_percentile(times, 90) == pytest.approx(90.1, abs=0.5)
        assert cdf_at_percentile([], 90) == 0.0

    def test_makespan(self):
        assert makespan([5.0, 9.0, 2.0]) == 9.0
        assert makespan([]) == 0.0

    def test_numpy_array_inputs(self):
        # Regression: every Sequence[float] metric must accept numpy arrays.
        times = np.array([3.0, 1.0, 2.0])
        assert completion_cdf(times)[-1] == (3.0, 1.0)
        assert fraction_completed_by(times, 2.5) == pytest.approx(2 / 3)
        assert cdf_at_percentile(times, 50) == pytest.approx(2.0)
        assert makespan(times) == 3.0
        assert completion_cdf(np.array([])) == []
        assert fraction_completed_by(np.array([]), 1.0) == 0.0
        assert makespan(np.array([])) == 0.0


class TestRelative:
    def test_relative_to_baseline(self):
        values = {"CloudQC": 50.0, "Greedy": 100.0}
        relative = relative_to_baseline(values, "CloudQC")
        assert relative["CloudQC"] == 1.0
        assert relative["Greedy"] == 2.0

    def test_missing_baseline(self):
        with pytest.raises(KeyError):
            relative_to_baseline({"a": 1.0}, "b")

    def test_zero_baseline(self):
        with pytest.raises(ValueError):
            relative_to_baseline({"a": 0.0}, "a")


def result(
    job_id="job-0",
    arrival=0.0,
    placement=0.0,
    completion=10.0,
    outcome=JobOutcome.COMPLETED,
    dropped=None,
):
    nan = float("nan")
    is_completed = outcome == JobOutcome.COMPLETED
    return TenantJobResult(
        job_id=job_id,
        circuit_name="ghz_n4",
        arrival_time=arrival,
        placement_time=placement if is_completed else nan,
        completion_time=completion if is_completed else nan,
        num_remote_operations=0,
        num_qpus_used=1 if is_completed else 0,
        outcome=outcome,
        dropped_time=dropped,
    )


class TestStreamMetrics:
    def test_outcome_counts_and_rejection_rate(self):
        results = [
            result("job-0"),
            result("job-1", outcome=JobOutcome.REJECTED, arrival=1.0, dropped=1.0),
            result("job-2", outcome=JobOutcome.EXPIRED, arrival=2.0, dropped=7.0),
            result("job-3", arrival=3.0, placement=4.0, completion=9.0),
        ]
        counts = outcome_counts(results)
        assert counts == {
            "completed": 2,
            "rejected": 1,
            "expired": 1,
            "preempted": 0,
            "failed": 0,
        }
        assert rejection_rate(results) == pytest.approx(0.5)

    def test_rejection_rate_empty(self):
        assert rejection_rate([]) == 0.0

    def test_rejection_rate_numpy_array_input(self):
        # Regression: `if not results:` on a numpy object array of 2+
        # elements raised the ambiguous-truth-value ValueError.
        results = np.array(
            [
                result("job-0"),
                result("job-1", outcome=JobOutcome.REJECTED, dropped=1.0),
            ],
            dtype=object,
        )
        assert rejection_rate(results) == pytest.approx(0.5)
        assert rejection_rate(np.array([], dtype=object)) == 0.0

    def test_queueing_delays_exclude_rejected(self):
        results = [
            result("job-0", arrival=0.0, placement=5.0),
            result("job-1", outcome=JobOutcome.REJECTED, arrival=1.0, dropped=1.0),
            result("job-2", outcome=JobOutcome.EXPIRED, arrival=2.0, dropped=10.0),
        ]
        assert queueing_delays(results) == [5.0, 8.0]
        assert queueing_delays(results, include_expired=False) == [5.0]

    def test_queueing_delay_stats_percentiles(self):
        results = [
            result(f"job-{i}", arrival=0.0, placement=float(i))
            for i in range(101)
        ]
        stats = QueueingDelayStats.from_results(results)
        assert stats.count == 101
        assert stats.p50 == pytest.approx(50.0)
        assert stats.p95 == pytest.approx(95.0)
        assert stats.p99 == pytest.approx(99.0)

    def test_queueing_delay_stats_empty(self):
        stats = QueueingDelayStats.from_results([])
        assert stats.count == 0
        assert stats.p99 == 0.0

    def test_queue_depth_timeseries_steps(self):
        results = [
            # In queue [0, 4]; placed at 4.
            result("job-0", arrival=0.0, placement=4.0, completion=9.0),
            # In queue [1, 6]; expired at 6.
            result("job-1", outcome=JobOutcome.EXPIRED, arrival=1.0, dropped=6.0),
            # Rejected: never queued.
            result("job-2", outcome=JobOutcome.REJECTED, arrival=2.0, dropped=2.0),
        ]
        assert queue_depth_timeseries(results) == [
            (0.0, 1),
            (1.0, 2),
            (4.0, 1),
            (6.0, 0),
        ]
        assert max_queue_depth(results) == 2

    def test_queue_depth_nets_same_instant_events(self):
        # Placed at its own arrival instant: no depth change registers.
        results = [result("job-0", arrival=5.0, placement=5.0, completion=9.0)]
        assert queue_depth_timeseries(results) == []
        assert max_queue_depth(results) == 0

    def test_stream_summary_aggregates(self):
        results = [
            result("job-0", arrival=0.0, placement=3.0, completion=10.0),
            result("job-1", outcome=JobOutcome.REJECTED, arrival=1.0, dropped=1.0),
            result("job-2", outcome=JobOutcome.EXPIRED, arrival=2.0, dropped=8.0),
        ]
        summary = StreamSummary.from_results(results)
        assert summary.total == 3
        assert summary.completed == 1
        assert summary.rejected == 1
        assert summary.expired == 1
        assert summary.rejection_rate == pytest.approx(2 / 3)
        assert summary.queueing.count == 2
        assert summary.completion.count == 1
        assert summary.completion.mean == pytest.approx(10.0)
        assert summary.max_queue_depth == 2


def preempted_result(job_id, preemptions=1, migrations=0, wasted=0.0,
                     outcome=JobOutcome.COMPLETED, completion=20.0):
    base = result(job_id, arrival=0.0, placement=2.0, completion=completion,
                  outcome=outcome, dropped=None if outcome == JobOutcome.COMPLETED else 15.0)
    return TenantJobResult(
        job_id=base.job_id,
        circuit_name=base.circuit_name,
        arrival_time=base.arrival_time,
        placement_time=base.placement_time,
        completion_time=base.completion_time,
        num_remote_operations=base.num_remote_operations,
        num_qpus_used=base.num_qpus_used,
        outcome=base.outcome,
        dropped_time=base.dropped_time,
        num_preemptions=preemptions,
        num_migrations=migrations,
        wasted_time=wasted,
    )


class TestPreemptionMetrics:
    def test_totals(self):
        results = [
            preempted_result("job-0", preemptions=2, wasted=7.5),
            preempted_result("job-1", preemptions=0, migrations=1),
            result("job-2"),
        ]
        assert total_preemptions(results) == 2
        assert total_wasted_time(results) == pytest.approx(7.5)

    def test_preemption_stats(self):
        results = [
            preempted_result("job-0", preemptions=2, wasted=7.5),
            preempted_result("job-1", preemptions=1, migrations=2, wasted=1.5,
                             outcome=JobOutcome.PREEMPTED),
            result("job-2"),
        ]
        stats = PreemptionStats.from_results(results)
        assert stats.preempted_jobs == 2
        assert stats.stranded == 1
        assert stats.preemption_events == 3
        assert stats.migration_events == 2
        assert stats.wasted_time == pytest.approx(9.0)

    def test_stream_summary_carries_preemption_stats(self):
        results = [preempted_result("job-0", preemptions=1, wasted=3.0)]
        summary = StreamSummary.from_results(results)
        assert summary.preemption.preemption_events == 1
        assert summary.preemption.wasted_time == pytest.approx(3.0)

    def test_queue_depth_uses_first_placement_for_stranded_jobs(self):
        # A stranded-preempted job ran from its first placement: it left the
        # arrival queue then, not at its (much later) final eviction.
        ran_then_stranded = TenantJobResult(
            job_id="job-0",
            circuit_name="ghz_n4",
            arrival_time=0.0,
            placement_time=2.0,
            completion_time=float("nan"),
            num_remote_operations=0,
            num_qpus_used=0,
            outcome=JobOutcome.PREEMPTED,
            dropped_time=50.0,
            num_preemptions=1,
        )
        assert queue_depth_timeseries([ran_then_stranded]) == [
            (0.0, 1),
            (2.0, 0),
        ]

    def test_drop_aware_percentile(self):
        # 10 jobs, one dropped: p99 must be unbounded, p50 finite.
        results = [
            result(f"job-{i}", arrival=0.0, placement=0.0, completion=float(i + 1))
            for i in range(9)
        ] + [result("job-9", outcome=JobOutcome.EXPIRED, arrival=0.0, dropped=4.0)]
        assert drop_aware_jct_percentile(results, 99) == math.inf
        assert drop_aware_jct_percentile(results, 50) == pytest.approx(5.0)
        assert drop_aware_jct_percentile([], 99) == 0.0

    def test_drop_aware_percentile_all_completed(self):
        results = [
            result(f"job-{i}", arrival=0.0, placement=0.0, completion=float(i + 1))
            for i in range(100)
        ]
        assert drop_aware_jct_percentile(results, 99) == pytest.approx(99.0)
