"""End-to-end integration tests across the full CloudQC pipeline."""

import pytest

from repro import CloudQCFramework
from repro.analysis import default_cloud
from repro.circuits.library import get_circuit
from repro.multitenant import (
    CompletionStats,
    MultiTenantSimulator,
    completion_cdf,
    generate_batch,
    priority_batch_manager,
)
from repro.placement import (
    CloudQCBFSPlacement,
    CloudQCPlacement,
    RandomPlacement,
    SimulatedAnnealingPlacement,
)
from repro.scheduling import AverageScheduler, CloudQCScheduler, GreedyScheduler
from repro.sim import NetworkExecutor


class TestPlacementQualityShape:
    """The qualitative Table III result: CloudQC beats the baselines."""

    @pytest.mark.parametrize("name", ["ghz_n127", "ising_n66", "adder_n64"])
    def test_cloudqc_beats_random_and_sa_on_structured_circuits(self, name):
        cloud = default_cloud(seed=7)
        circuit = get_circuit(name)
        cloudqc = CloudQCPlacement().place(circuit, cloud, seed=1).num_remote_operations()
        random = RandomPlacement().place(circuit, cloud, seed=1).num_remote_operations()
        sa = (
            SimulatedAnnealingPlacement(iterations=1500)
            .place(circuit, cloud, seed=1)
            .num_remote_operations()
        )
        assert cloudqc < random
        assert cloudqc < sa

    def test_cloudqc_topology_awareness_beats_bfs_on_large_irregular_circuit(self):
        # On qft_n63 the remote-operation counts are close, but community
        # detection places the parts on tightly connected QPUs, so the
        # distance-weighted communication cost (Eq. 1) is clearly lower.
        cloud = default_cloud(seed=7)
        circuit = get_circuit("qft_n63")
        cloudqc = CloudQCPlacement().place(circuit, cloud, seed=1)
        bfs = CloudQCBFSPlacement().place(circuit, cloud, seed=1)
        assert cloudqc.communication_cost(cloud) < bfs.communication_cost(cloud)
        assert cloudqc.num_remote_operations() <= bfs.num_remote_operations() * 1.10


class TestSchedulingQualityShape:
    """The qualitative Fig. 22 result: CloudQC's scheduler beats Greedy on deep DAGs."""

    def test_cloudqc_scheduler_beats_greedy_on_qft(self):
        cloud = default_cloud(seed=7)
        circuit = get_circuit("qft_n63")
        placement = CloudQCPlacement().place(circuit, cloud, seed=1)
        cloudqc_time = (
            NetworkExecutor(cloud, CloudQCScheduler())
            .execute_single(circuit, placement.mapping, seed=3)
            .completion_time
        )
        greedy_time = (
            NetworkExecutor(cloud, GreedyScheduler())
            .execute_single(circuit, placement.mapping, seed=3)
            .completion_time
        )
        assert cloudqc_time < greedy_time

    def test_more_epr_success_means_faster_completion(self):
        cloud = default_cloud(seed=7)
        circuit = get_circuit("qugan_n71")
        placement = CloudQCPlacement().place(circuit, cloud, seed=1)
        low = (
            NetworkExecutor(cloud, CloudQCScheduler(), epr_success_probability=0.1)
            .execute_single(circuit, placement.mapping, seed=3)
            .completion_time
        )
        high = (
            NetworkExecutor(cloud, CloudQCScheduler(), epr_success_probability=0.5)
            .execute_single(circuit, placement.mapping, seed=3)
            .completion_time
        )
        assert high < low


class TestMultiTenantPipeline:
    def test_full_batch_through_framework(self):
        framework = CloudQCFramework.with_defaults(seed=11)
        batch = generate_batch("qugan", batch_size=4, seed=1)
        results = framework.run_batch(batch, seed=1)
        assert len(results) == 4
        stats = CompletionStats.from_times([r.job_completion_time for r in results])
        assert stats.maximum >= stats.mean >= 0
        cdf = completion_cdf([r.job_completion_time for r in results])
        assert cdf[-1][1] == pytest.approx(1.0)

    def test_placement_quality_propagates_to_multitenant_jct(self):
        """A deliberately bad placement policy yields slower batches than CloudQC."""
        cloud = default_cloud(seed=11)
        batch = generate_batch("qugan", batch_size=4, seed=2)
        good = MultiTenantSimulator(
            cloud,
            placement_algorithm=CloudQCPlacement(),
            network_scheduler=CloudQCScheduler(),
            batch_manager=priority_batch_manager(),
        ).run_batch(batch, seed=3)
        bad = MultiTenantSimulator(
            cloud,
            placement_algorithm=RandomPlacement(),
            network_scheduler=CloudQCScheduler(),
            batch_manager=priority_batch_manager(),
        ).run_batch(batch, seed=3)
        good_mean = sum(r.job_completion_time for r in good) / len(good)
        bad_mean = sum(r.job_completion_time for r in bad) / len(bad)
        assert good_mean < bad_mean
