"""Tests for the benchmark circuit library generators."""

import pytest

from repro.circuits.library import (
    available_circuits,
    bernstein_vazirani,
    build,
    cat_state,
    counterfeit_coin,
    get_circuit,
    ghz,
    ising,
    multiplier,
    qft,
    quantum_knn,
    quantum_volume,
    qugan,
    ripple_carry_adder,
    swap_test,
    vqe_uccsd,
    w_state,
)


class TestGhzAndCat:
    def test_ghz_gate_counts(self):
        circuit = ghz(127)
        assert circuit.num_qubits == 127
        assert circuit.num_two_qubit_gates == 126

    def test_ghz_connectivity_is_a_chain(self):
        circuit = ghz(10)
        pairs = set(circuit.two_qubit_interactions())
        assert pairs == {(q, q + 1) for q in range(9)}

    def test_cat_matches_table2_sizes(self):
        assert cat_state(65).num_two_qubit_gates == 64
        assert cat_state(130).num_two_qubit_gates == 129

    def test_ghz_requires_two_qubits(self):
        with pytest.raises(ValueError):
            ghz(1)


class TestBvAndIsing:
    def test_bv_cx_count_equals_secret_weight(self):
        circuit = bernstein_vazirani(10, secret=[1, 0, 1, 1, 0, 0, 0, 1, 0])
        assert circuit.num_two_qubit_gates == 4

    def test_bv_secret_length_check(self):
        with pytest.raises(ValueError):
            bernstein_vazirani(5, secret=[1, 0])

    def test_bv_all_cx_target_ancilla(self):
        circuit = bernstein_vazirani(8)
        ancilla = 7
        for gate in circuit.gates:
            if gate.is_two_qubit:
                assert gate.qubits[1] == ancilla

    def test_ising_two_qubit_count(self):
        assert ising(34).num_two_qubit_gates == 66
        assert ising(66).num_two_qubit_gates == 130
        assert ising(98).num_two_qubit_gates == 194

    def test_ising_depth_independent_of_width(self):
        assert ising(34).depth() == ising(98).depth()


class TestSwapTestFamily:
    def test_swap_test_two_qubit_count(self):
        assert swap_test(115).num_two_qubit_gates == 456

    def test_swap_test_rejects_even_width(self):
        with pytest.raises(ValueError):
            swap_test(10)

    def test_knn_two_qubit_counts(self):
        assert quantum_knn(67).num_two_qubit_gates == 264
        assert quantum_knn(129).num_two_qubit_gates == 512

    def test_qugan_close_to_table2(self):
        assert abs(qugan(71).num_two_qubit_gates - 418) <= 5
        assert abs(qugan(111).num_two_qubit_gates - 658) <= 5

    def test_qugan_uses_all_qubits(self):
        circuit = qugan(39)
        assert len(circuit.active_qubits()) == 39


class TestArithmetic:
    def test_adder_uses_all_qubits(self):
        circuit = ripple_carry_adder(64)
        assert circuit.num_qubits == 64
        assert len(circuit.active_qubits()) == 64

    def test_adder_rejects_odd_width(self):
        with pytest.raises(ValueError):
            ripple_carry_adder(7)

    def test_adder_two_qubit_count_scales_linearly(self):
        small = ripple_carry_adder(16).num_two_qubit_gates
        large = ripple_carry_adder(32).num_two_qubit_gates
        assert large > small
        assert large / small == pytest.approx(2.0, rel=0.25)

    def test_multiplier_is_dense_and_deep(self):
        circuit = multiplier(45)
        assert circuit.num_two_qubit_gates > 2000
        assert circuit.depth() > circuit.num_qubits

    def test_counterfeit_coin_two_qubit_count(self):
        assert counterfeit_coin(64).num_two_qubit_gates == 64

    def test_counterfeit_coin_remote_gates_share_ancilla(self):
        circuit = counterfeit_coin(16)
        ancilla = 15
        for gate in circuit.gates:
            if gate.is_two_qubit:
                assert ancilla in gate.qubits


class TestTransforms:
    def test_qft_decomposed_two_qubit_count(self):
        n = 12
        circuit = qft(n)
        expected = n * (n - 1) + 3 * (n // 2)  # 2 CX per CP + 3 CX per swap
        assert circuit.num_two_qubit_gates == expected

    def test_qft_without_decomposition_uses_cp(self):
        circuit = qft(6, decompose_controlled_phase=False, with_swaps=False)
        assert circuit.count_ops().get("cp") == 15

    def test_qft160_matches_paper_count_without_swaps(self):
        circuit = qft(160, with_swaps=False)
        assert circuit.num_two_qubit_gates == 25440

    def test_quantum_volume_two_qubit_count(self):
        circuit = quantum_volume(10, depth=10, seed=3)
        assert circuit.num_two_qubit_gates == 10 * 5 * 3

    def test_quantum_volume_is_seeded(self):
        a = quantum_volume(8, seed=5)
        b = quantum_volume(8, seed=5)
        assert a.gates == b.gates

    def test_vqe_uccsd_structure(self):
        circuit = vqe_uccsd(12, seed=2)
        assert circuit.num_qubits == 12
        assert circuit.num_two_qubit_gates > 0
        # Hartree-Fock initialisation flips the first half of the register.
        x_targets = [g.qubits[0] for g in circuit.gates if g.name == "x"]
        assert x_targets[:6] == list(range(6))

    def test_wstate_generator(self):
        circuit = w_state(6)
        assert circuit.num_qubits == 6
        assert circuit.num_two_qubit_gates == 10


class TestRegistry:
    def test_get_circuit_parses_names(self):
        circuit = get_circuit("qft_n29")
        assert circuit.num_qubits == 29

    def test_get_circuit_with_compound_family(self):
        assert get_circuit("swap_test_n115").num_qubits == 115
        assert get_circuit("vqe_uccsd_n28").num_qubits == 28

    def test_get_circuit_unknown_name(self):
        with pytest.raises(KeyError):
            get_circuit("nonsense")

    def test_build_unknown_family(self):
        with pytest.raises(KeyError):
            build("nope", 4)

    def test_every_advertised_circuit_builds(self):
        for name in available_circuits():
            circuit = get_circuit(name)
            expected_qubits = int(name.rpartition("_n")[2])
            assert circuit.num_qubits == expected_qubits
            assert circuit.num_gates > 0
