"""Tests for the Table II characteristics data and the characterise helper."""

import pytest

from repro.circuits import PAPER_CHARACTERISTICS, characterize
from repro.circuits.library import get_circuit


class TestPaperTable:
    def test_all_21_circuits_listed(self):
        assert len(PAPER_CHARACTERISTICS) == 21

    def test_qubit_counts_follow_names(self):
        for name, record in PAPER_CHARACTERISTICS.items():
            assert record.num_qubits == int(name.rpartition("_n")[2])

    def test_known_rows(self):
        assert PAPER_CHARACTERISTICS["qft_n160"].num_two_qubit_gates == 25440
        assert PAPER_CHARACTERISTICS["multiplier_n45"].depth == 462
        assert PAPER_CHARACTERISTICS["ghz_n127"].num_two_qubit_gates == 126


class TestCharacterize:
    def test_characterize_matches_circuit_properties(self, bell_circuit):
        record = characterize(bell_circuit)
        assert record.num_qubits == 2
        assert record.num_two_qubit_gates == 1
        assert record.depth == 2
        assert record.name == "bell"

    @pytest.mark.parametrize(
        "name", ["ghz_n127", "cat_n65", "ising_n34", "cc_n64", "knn_n67"]
    )
    def test_generated_circuits_match_paper_counts_exactly(self, name):
        generated = characterize(get_circuit(name))
        paper = PAPER_CHARACTERISTICS[name]
        assert generated.num_qubits == paper.num_qubits
        assert generated.num_two_qubit_gates == paper.num_two_qubit_gates

    @pytest.mark.parametrize("name", ["qugan_n71", "qugan_n111", "adder_n64"])
    def test_generated_circuits_match_paper_counts_approximately(self, name):
        generated = characterize(get_circuit(name))
        paper = PAPER_CHARACTERISTICS[name]
        assert generated.num_qubits == paper.num_qubits
        ratio = generated.num_two_qubit_gates / paper.num_two_qubit_gates
        assert 0.8 <= ratio <= 1.2
