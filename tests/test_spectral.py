"""Tests for the spectral partitioning alternative."""

import networkx as nx
import pytest

from repro.partition import (
    PartitionError,
    edge_cut,
    fiedler_bisection,
    is_valid_partition,
    part_weights,
    spectral_partition,
)


def barbell(clique: int = 5) -> nx.Graph:
    graph = nx.barbell_graph(clique, 0)
    nx.set_edge_attributes(graph, 1.0, "weight")
    return graph


class TestFiedlerBisection:
    def test_splits_barbell_at_the_bridge(self):
        graph = barbell()
        split = fiedler_bisection(graph)
        assert edge_cut(graph, split) == pytest.approx(1.0)

    def test_halves_are_balanced(self):
        graph = barbell()
        split = fiedler_bisection(graph)
        sizes = part_weights(graph, split, 2)
        assert sizes[0] == sizes[1]

    def test_tiny_graphs(self):
        single = nx.Graph()
        single.add_node(0)
        assert fiedler_bisection(single) == {0: 0}
        pair = nx.path_graph(2)
        assert sorted(fiedler_bisection(pair).values()) == [0, 1]


class TestSpectralPartition:
    def test_valid_partition_for_non_power_of_two(self):
        graph = nx.erdos_renyi_graph(30, 0.25, seed=3)
        nx.set_edge_attributes(graph, 1.0, "weight")
        assignment = spectral_partition(graph, 3, seed=1)
        assert is_valid_partition(graph, assignment, 3)

    def test_respects_imbalance(self):
        graph = nx.erdos_renyi_graph(40, 0.2, seed=8)
        nx.set_edge_attributes(graph, 1.0, "weight")
        assignment = spectral_partition(graph, 4, imbalance=0.15, seed=1)
        weights = part_weights(graph, assignment, 4)
        assert max(weights.values()) <= (1.15 * 40 / 4) + 1e-9

    def test_handles_disconnected_graph(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)], weight=1.0)
        graph.add_nodes_from([4, 5])
        assignment = spectral_partition(graph, 2, imbalance=0.5, seed=1)
        assert is_valid_partition(graph, assignment, 2)

    def test_too_many_parts_raises(self):
        with pytest.raises(PartitionError):
            spectral_partition(nx.path_graph(3), 5)

    def test_quality_comparable_to_multilevel_on_barbell(self):
        from repro.partition import partition_graph

        graph = barbell(8)
        spectral_cut = edge_cut(graph, spectral_partition(graph, 2, seed=1))
        multilevel_cut = edge_cut(graph, partition_graph(graph, 2, seed=1))
        assert spectral_cut == pytest.approx(1.0)
        assert multilevel_cut == pytest.approx(1.0)
