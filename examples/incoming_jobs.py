#!/usr/bin/env python3
"""Incoming-job mode: tenants arriving over time as a Poisson stream.

The paper's batch manager supports an incoming-job (FIFO) mode in addition to
batch mode.  This example feeds the multi-tenant simulator's event-driven
``run_stream`` a Poisson arrival stream and compares FIFO admission against
the Eq. 11 metric ordering, reporting queueing delay and job completion time
per tenant.  Every arrival is an event on the simulation loop, so a tenant
arriving while other jobs hold the network is still placed at its arrival
time whenever computing qubits are free.

Run with::

    python examples/incoming_jobs.py [num_jobs] [rate]

``rate`` is jobs per CX-time-unit (default 0.002, i.e. one job every 500 units).
"""

from __future__ import annotations

import sys

from repro.analysis import default_cloud
from repro.multitenant import (
    CompletionStats,
    MultiTenantSimulator,
    fifo_batch_manager,
    generate_batch,
    poisson_arrivals,
    priority_batch_manager,
)
from repro.placement import CloudQCPlacement
from repro.scheduling import CloudQCScheduler


def main(num_jobs: int, rate: float) -> None:
    cloud = default_cloud(seed=7)
    circuits = generate_batch("mixed", batch_size=num_jobs, seed=4,
                              names=["qft_n29", "qugan_n39", "knn_n67", "ising_n66"])
    arrivals = poisson_arrivals(num_jobs, rate=rate, seed=4)
    print(f"{num_jobs} tenants arriving as a Poisson stream (rate {rate}/unit)")

    for label, manager in (
        ("FIFO admission", fifo_batch_manager()),
        ("Eq. 11 metric ordering", priority_batch_manager()),
    ):
        simulator = MultiTenantSimulator(
            cloud,
            placement_algorithm=CloudQCPlacement(),
            network_scheduler=CloudQCScheduler(),
            batch_manager=manager,
        )
        results = simulator.run_stream(circuits, arrivals, seed=1)
        stats = CompletionStats.from_times([r.job_completion_time for r in results])
        queueing = [r.queueing_delay for r in results]
        print(f"\n{label}:")
        print(f"  mean JCT        : {stats.mean:.0f} CX units (p90 {stats.p90:.0f})")
        print(f"  mean queue delay: {sum(queueing) / len(queueing):.0f}")
        slowest = max(results, key=lambda r: r.job_completion_time)
        print(
            f"  slowest tenant  : {slowest.circuit_name} arrived at "
            f"{slowest.arrival_time:.0f}, finished at {slowest.completion_time:.0f}"
        )


if __name__ == "__main__":
    jobs_argument = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    rate_argument = float(sys.argv[2]) if len(sys.argv) > 2 else 0.002
    main(jobs_argument, rate_argument)
