#!/usr/bin/env python3
"""Bring your own cloud and circuit: the library as a research sandbox.

Shows the lower-level API surface: building a custom topology (a 3x3 grid of
heterogeneous QPUs), loading a circuit from OpenQASM text, inspecting its
interaction graph and remote DAG, and comparing two placement strategies on
that custom cloud.

Run with::

    python examples/custom_cloud_and_circuit.py
"""

from __future__ import annotations

from repro.circuits import InteractionGraph, parse_qasm
from repro.cloud import QPU, CloudTopology, QuantumCloud
from repro.placement import CloudQCPlacement, RandomPlacement
from repro.scheduling import CloudQCScheduler, RemoteDAG
from repro.sim import NetworkExecutor

QASM = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[12];
creg c[12];
h q[0];
""" + "\n".join(
    f"cx q[{a}],q[{b}];" for a, b in
    [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 9),
     (9, 10), (10, 11), (0, 6), (1, 7), (2, 8), (3, 9), (4, 10), (5, 11)]
)


def build_cloud() -> QuantumCloud:
    """A 3x3 grid of QPUs where the corner QPUs are smaller."""
    topology = CloudTopology.grid(3, 3)
    qpus = {}
    for qpu_id in topology.qpu_ids:
        is_corner = qpu_id in (0, 2, 6, 8)
        qpus[qpu_id] = QPU(
            qpu_id=qpu_id,
            computing_capacity=3 if is_corner else 6,
            communication_capacity=2,
        )
    return QuantumCloud(topology, qpus=qpus, epr_success_probability=0.4)


def main() -> None:
    circuit = parse_qasm(QASM, name="custom_ladder")
    print(f"Loaded {circuit.name}: {circuit.num_qubits} qubits, "
          f"{circuit.num_two_qubit_gates} two-qubit gates, depth {circuit.depth()}")

    interaction = InteractionGraph.from_circuit(circuit)
    print(f"Interaction graph: {interaction.num_edges} edges, "
          f"total weight {interaction.total_weight()}, "
          f"center qubit q{interaction.graph_center()}")

    cloud = build_cloud()
    print(f"\nCustom cloud: {cloud.num_qpus} QPUs on a 3x3 grid, "
          f"{cloud.total_computing_capacity()} computing qubits in total")

    for placer in (CloudQCPlacement(), RandomPlacement()):
        placement = placer.place(circuit, cloud, seed=1)
        remote_dag = RemoteDAG(circuit, placement.mapping)
        executor = NetworkExecutor(cloud, CloudQCScheduler())
        result = executor.execute_single(circuit, placement.mapping, seed=1)
        print(f"\n{placer.name} placement:")
        print(f"  QPUs used        : {placement.qpus_used()}")
        print(f"  remote operations: {placement.num_remote_operations()}")
        print(f"  remote DAG depth : {remote_dag.critical_path_length()}")
        print(f"  completion time  : {result.completion_time:.1f} CX units")


if __name__ == "__main__":
    main()
