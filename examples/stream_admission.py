#!/usr/bin/env python3
"""Admission control on a synthetic cluster trace.

Generates a cluster submission trace (heavy-tailed job sizes, diurnal rate
modulation, skewed tenant activity) with
:func:`~repro.multitenant.generate_cluster_trace` and replays it through the
event-driven ``run_stream`` once per admission policy:

* ``admit-all``    -- no back-pressure (the default behavior);
* ``queue-depth``  -- reject arrivals while the pending queue is full;
* ``token-bucket`` -- admit at a sustained rate with bounded bursts;
* ``deadline``     -- drop jobs whose queueing delay exceeds a bound.

For each policy it prints the outcome counts, queueing-delay percentiles,
mean job completion time, and the deepest the pending queue ever got.  The
trace is deliberately hot around its diurnal peaks, so ``admit-all`` shows
the queue blowing up while the other three trade completed jobs for bounded
delay -- the back-pressure tradeoff the policies exist for.

The replay runs through the bounded-memory telemetry path (PR 6): each leg
attaches a :class:`~repro.multitenant.Telemetry` sink with
``keep_results=False``, so no per-job result list is ever materialized --
the table is read straight off the sink via
:meth:`StreamSummary.from_telemetry` (counters and means exact, percentiles
within the GK sketch's documented rank-error bound).

Run with::

    python examples/stream_admission.py [num_jobs] [seed]

``num_jobs`` defaults to 600 (a few seconds); the scale benchmark in
``benchmarks/test_stream_scale.py`` replays the full 5000-job trace.
"""

from __future__ import annotations

import sys

from repro.cloud import CloudTopology, QuantumCloud
from repro.multitenant import (
    AdmitAll,
    MultiTenantSimulator,
    QueueDepthThreshold,
    QueueingDeadline,
    StreamSummary,
    Telemetry,
    TokenBucket,
    fifo_batch_manager,
    generate_cluster_trace,
)
from repro.placement import RandomPlacement
from repro.scheduling import CloudQCScheduler

#: Single-QPU-sized circuits keep placement fast at trace scale.
POOL = ["ghz_n4", "ghz_n6", "ghz_n8", "ghz_n12", "ghz_n16"]


def main(num_jobs: int, seed: int) -> None:
    if num_jobs < 1:
        raise SystemExit("num_jobs must be at least 1")
    trace = generate_cluster_trace(
        num_jobs,
        num_tenants=max(2, num_jobs // 3),
        base_rate=0.25,
        diurnal_amplitude=0.6,
        diurnal_period=5000.0,
        seed=seed,
        names=POOL,
    )
    span = trace.arrival_times[-1] - trace.arrival_times[0]
    print(
        f"trace: {len(trace)} jobs from {trace.num_tenants} tenants "
        f"over {span:.0f} CX-time units"
    )

    topology = CloudTopology.line(4)
    cloud = QuantumCloud(
        topology,
        computing_qubits_per_qpu=16,
        communication_qubits_per_qpu=4,
        epr_success_probability=0.95,
    )
    policies = [
        AdmitAll(),
        QueueDepthThreshold(max_depth=25),
        TokenBucket(rate=0.22, capacity=25.0),
        QueueingDeadline(max_delay=300.0),
    ]

    header = (
        f"{'policy':>12} {'done':>6} {'rej':>6} {'exp':>6} "
        f"{'p50':>8} {'p95':>8} {'p99':>8} {'meanJCT':>8} {'maxQ':>6}"
    )
    print("\n" + header)
    print("-" * len(header))
    for policy in policies:
        simulator = MultiTenantSimulator(
            cloud,
            placement_algorithm=RandomPlacement(),
            network_scheduler=CloudQCScheduler(),
            batch_manager=fifo_batch_manager(),
            admission_policy=policy,
        )
        # Bounded-memory replay: the sink aggregates online, no per-job
        # result list is retained.
        sink = Telemetry()
        simulator.run_stream(
            trace.circuits,
            trace.arrival_times,
            seed=1,
            telemetry=sink,
            keep_results=False,
            tenants=trace.tenant_ids,
        )
        summary = StreamSummary.from_telemetry(sink)
        print(
            f"{policy.name:>12} {summary.completed:>6} {summary.rejected:>6} "
            f"{summary.expired:>6} {summary.queueing.p50:>8.1f} "
            f"{summary.queueing.p95:>8.1f} {summary.queueing.p99:>8.1f} "
            f"{summary.completion.mean:>8.1f} {summary.max_queue_depth:>6}"
        )
    print(
        "\nqueueing-delay percentiles and mean JCT are in CX-time units; "
        "rej = rejected at arrival, exp = expired in the queue.\n"
        "All rows were aggregated online by the Telemetry sink "
        "(keep_results=False): counters exact, percentiles sketch-backed."
    )


if __name__ == "__main__":
    jobs_argument = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    seed_argument = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    main(jobs_argument, seed_argument)
