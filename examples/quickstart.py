#!/usr/bin/env python3
"""Quickstart: place and execute one circuit on the default quantum cloud.

Builds the paper's default 20-QPU cloud, places a 67-qubit quantum-KNN circuit
with CloudQC (graph partitioning + community detection + Algorithm 2), runs the
priority-based network scheduler over the probabilistic quantum network, and
prints the placement and timing summary.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import CloudQCFramework
from repro.circuits.library import get_circuit


def main() -> None:
    # The paper's default cloud: 20 QPUs, 20 computing + 5 communication qubits
    # each, random topology with edge probability 0.3, EPR success 0.3.
    framework = CloudQCFramework.with_defaults(seed=7)

    circuit = get_circuit("knn_n67")
    print(f"Circuit: {circuit.name}")
    print(f"  qubits         : {circuit.num_qubits}")
    print(f"  two-qubit gates: {circuit.num_two_qubit_gates}")
    print(f"  depth          : {circuit.depth()}")

    outcome = framework.run_circuit(circuit, seed=1)
    placement = outcome.placement

    print("\nCloudQC placement")
    print(f"  QPUs used          : {placement.num_qpus_used} -> {placement.qpus_used()}")
    print(f"  remote operations  : {placement.num_remote_operations()}")
    print(f"  communication cost : {placement.communication_cost(framework.cloud):.0f}")
    print(f"  qubits per QPU     : {placement.qubits_per_qpu()}")

    result = outcome.result
    print("\nNetwork execution (CloudQC scheduler, EPR success probability 0.3)")
    print(f"  EPR rounds        : {result.epr_rounds}")
    print(f"  local critical path: {result.local_time:.1f} CX units")
    print(f"  completion time   : {result.completion_time:.1f} CX units")


if __name__ == "__main__":
    main()
