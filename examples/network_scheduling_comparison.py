#!/usr/bin/env python3
"""Network-scheduling study: EPR allocation policies under contention (Fig. 22).

Places one circuit with CloudQC and then executes it with the four allocation
policies (CloudQC, Average, Random, Greedy), sweeping the number of
communication qubits per QPU and the EPR success probability -- the axes of
Figs. 10-13 and 18-21.

Run with::

    python examples/network_scheduling_comparison.py [circuit]

e.g. ``python examples/network_scheduling_comparison.py multiplier_n45``.
"""

from __future__ import annotations

import sys

from repro.analysis import (
    format_series,
    format_table,
    scheduling_comparison,
    sweep_communication_qubits,
    sweep_epr_probability,
)
from repro.multitenant import relative_to_baseline

DEFAULT_CIRCUIT = "qft_n63"


def main(circuit: str) -> None:
    print(f"Circuit under test: {circuit}\n")

    table = scheduling_comparison([circuit], repetitions=2, seed=1)
    relative = {circuit: relative_to_baseline(table[circuit], "CloudQC")}
    print("Mean job completion time under the default setting (CX units):")
    print(format_table(table, ["CloudQC", "Average", "Random", "Greedy"], precision=0))
    print("\nRelative to CloudQC (the quantity plotted in Fig. 22):")
    print(format_table(relative, ["CloudQC", "Average", "Random", "Greedy"], precision=2))

    comm_counts = (5, 7, 10)
    comm_series = sweep_communication_qubits(
        circuit, communication_counts=comm_counts, repetitions=2, seed=1
    )
    print("\nMean JCT vs communication qubits per QPU (Figs. 10-13):")
    print(format_series(comm_series, comm_counts, x_label="comm_qubits", precision=0))

    probabilities = (0.1, 0.3, 0.5)
    epr_series = sweep_epr_probability(
        circuit, probabilities=probabilities, repetitions=2, seed=1
    )
    print("\nMean JCT vs EPR success probability (Figs. 18-21):")
    print(format_series(epr_series, probabilities, x_label="p", precision=0))

    print(
        "\nExpected shape: CloudQC's priority-based allocation gives the lowest "
        "completion time on circuits with deep remote DAGs, Greedy the highest; "
        "more communication qubits and higher EPR success probability shorten "
        "every curve."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else DEFAULT_CIRCUIT)
