#!/usr/bin/env python3
"""Deadline-rescue preemption cutting expired-job counts under overload.

Replays an *anchor-and-burst* stream
(:func:`~repro.multitenant.generate_anchor_burst_trace`): every cycle, one
large "anchor" circuit pins most of the cloud's computing qubits for a long
stretch while a burst of small "filler" circuits arrives behind it.
Admission uses a queueing deadline, so in the paper's irrevocable-placement
model (the default ``NeverPreempt``) the fillers queue behind the anchor
until they expire.

:class:`~repro.multitenant.DeadlineRescue` flips the outcome: shortly before
a queued filler would expire, it evicts the cheapest victim -- the anchor --
frees its qubits, and the fillers run; the anchor resumes later, keeping its
banked EPR successes under the default ``resume`` work-loss model (run with
``--work-loss restart`` to see the wasted-work cost instead).

Both legs replay through the streaming :class:`~repro.multitenant.Telemetry`
sink (PR 6) with ``keep_results=False`` -- the table, including the
drop-aware p99 JCT, is read off the sink's online aggregates.  Pass
``--export FILE.jsonl`` to also write the structured event stream of the
deadline-rescue leg; ``scripts/bench_report.py --events FILE.jsonl``
rebuilds the same report from that file without re-simulating.

Run with::

    python examples/stream_preemption.py [cycles] [seed] [--work-loss restart]

``cycles`` defaults to 4 (a couple of seconds); the scale benchmark in
``benchmarks/test_stream_preemption.py`` replays the full 5015-job trace.
"""

from __future__ import annotations

import argparse

from repro.cloud import CloudTopology, QuantumCloud
from repro.multitenant import (
    WORK_LOSS_MODELS,
    DeadlineRescue,
    MultiTenantSimulator,
    NeverPreempt,
    QueueingDeadline,
    StreamSummary,
    Telemetry,
    fifo_batch_manager,
    generate_anchor_burst_trace,
)
from repro.placement import CloudQCPlacement
from repro.scheduling import CloudQCScheduler

NUM_QPUS = 6
FILLERS_PER_CYCLE = 16
DEADLINE = 30.0
RESCUE_HORIZON = 5.0


def make_simulator(preemption_policy, work_loss):
    cloud = QuantumCloud(
        CloudTopology.line(NUM_QPUS),
        computing_qubits_per_qpu=10,
        communication_qubits_per_qpu=4,
        epr_success_probability=0.95,
    )
    return MultiTenantSimulator(
        cloud,
        placement_algorithm=CloudQCPlacement(
            imbalance_factors=(0.05, 0.30), max_extra_parts=2
        ),
        network_scheduler=CloudQCScheduler(),
        batch_manager=fifo_batch_manager(),
        admission_policy=QueueingDeadline(max_delay=DEADLINE),
        preemption_policy=preemption_policy,
        work_loss=work_loss,
    )


def main(cycles: int, seed: int, work_loss: str, export: str | None) -> None:
    if cycles < 1:
        raise SystemExit("cycles must be at least 1")
    trace = generate_anchor_burst_trace(
        cycles, FILLERS_PER_CYCLE, num_qpus=NUM_QPUS
    )
    print(
        f"trace: {len(trace)} jobs ({cycles} anchor/burst cycles), "
        f"queueing deadline {DEADLINE:.0f} CX-time units, "
        f"work-loss model: {work_loss}"
    )

    header = (
        f"{'policy':>16} {'done':>6} {'exp':>6} {'strand':>6} "
        f"{'evicts':>6} {'wasted':>8} {'p99 JCT*':>10}"
    )
    print("\n" + header)
    print("-" * len(header))
    for policy in [NeverPreempt(), DeadlineRescue(horizon=RESCUE_HORIZON)]:
        simulator = make_simulator(policy, work_loss)
        # Bounded-memory replay: aggregates come straight off the sink; the
        # rescue leg optionally exports its structured event stream.
        rescue_leg = policy.name == DeadlineRescue.name
        with Telemetry(events=export if rescue_leg else None) as sink:
            simulator.run_stream(
                trace.circuits,
                trace.arrival_times,
                seed=seed,
                telemetry=sink,
                keep_results=False,
                tenants=trace.tenant_ids,
            )
        summary = StreamSummary.from_telemetry(sink)
        p99 = sink.drop_aware_jct_percentile(99)
        print(
            f"{policy.name:>16} {summary.completed:>6} {summary.expired:>6} "
            f"{summary.preemption.stranded:>6} "
            f"{summary.preemption.preemption_events:>6} "
            f"{summary.preemption.wasted_time:>8.1f} "
            f"{p99:>10.1f}"
        )
    print(
        "\n*drop-aware p99 JCT: expired jobs never complete, so their JCT "
        "counts as inf;\n exp = expired in the queue, strand = ended the run "
        "evicted, wasted = redone work (CX-time units).\n Rows aggregated "
        "online by the Telemetry sink (keep_results=False)."
    )
    if export:
        print(
            f"\nwrote {export}; regenerate this report offline with:\n"
            f"  PYTHONPATH=src python scripts/bench_report.py --events {export}"
        )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("cycles", type=int, nargs="?", default=4,
                        help="anchor/burst cycles (default 4)")
    parser.add_argument("seed", type=int, nargs="?", default=1,
                        help="simulation seed (default 1)")
    parser.add_argument("--work-loss", choices=WORK_LOSS_MODELS,
                        default="resume",
                        help="what a resumed job keeps (default: resume)")
    parser.add_argument("--export", metavar="FILE.jsonl", default=None,
                        help="write the rescue leg's telemetry event stream")
    cli_args = parser.parse_args()
    main(cli_args.cycles, cli_args.seed, cli_args.work_loss, cli_args.export)
