#!/usr/bin/env python3
"""Record a submission trace to disk, then lazily replay it.

Demonstrates the trace-ingestion path (PR 7; see docs/architecture.md,
"Trace ingestion & replay"):

1. generate a synthetic cluster trace with
   :func:`~repro.multitenant.generate_cluster_trace` and write it as a
   versioned ``repro-trace`` file (jsonl or CSV -- both self-describing and
   strictly validated on read);
2. show the on-disk shape: the schema header plus one line per arrival;
3. replay the file with ``run_stream(trace=path)`` and
   ``keep_results=False`` -- records are decoded one at a time and each job
   is minted *at its arrival instant* by a pending-arrival cursor, so peak
   memory tracks the in-flight population, never the trace length.  A
   million-job file replays in the same footprint as this toy one
   (``benchmarks/test_stream_trace.py`` pins that claim).

The replay is bit-identical to submitting the same circuits and arrival
times up front: same seeds, same schedule, same telemetry event stream
(``tests/test_trace_replay.py`` pins that equivalence across all four
network schedulers).

Run with::

    python examples/replay_trace.py [num_jobs] [format]

``num_jobs`` defaults to 400 (a few seconds); ``format`` is ``jsonl``
(default) or ``csv``.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.cloud import CloudTopology, QuantumCloud
from repro.multitenant import (
    MultiTenantSimulator,
    QueueingDeadline,
    StreamSummary,
    Telemetry,
    fifo_batch_manager,
    generate_cluster_trace,
)
from repro.placement import RandomPlacement
from repro.scheduling import CloudQCScheduler

#: Single-QPU-sized circuits keep placement fast at trace scale.
POOL = ["ghz_n4", "ghz_n6", "ghz_n8", "ghz_n12", "ghz_n16"]


def main(num_jobs: int, file_format: str) -> None:
    if num_jobs < 1:
        raise SystemExit("num_jobs must be at least 1")
    if file_format not in ("jsonl", "csv"):
        raise SystemExit("format must be 'jsonl' or 'csv'")

    # 1. Record: generate a synthetic submission trace and write it out.
    trace = generate_cluster_trace(
        num_jobs,
        num_tenants=max(2, num_jobs // 3),
        base_rate=0.25,
        diurnal_amplitude=0.6,
        diurnal_period=5000.0,
        seed=3,
        names=POOL,
    )
    with tempfile.TemporaryDirectory(prefix="replay-trace-") as tmp:
        path = Path(tmp) / f"cluster.{file_format}"
        count = trace.to_file(path)
        print(
            f"wrote {count} records ({path.stat().st_size} bytes) "
            f"to {path.name}"
        )

        # 2. The on-disk shape: a schema header, then one line per arrival.
        with open(path, encoding="utf-8") as stream:
            for line in [next(stream) for _ in range(4)]:
                print(f"  {line.rstrip()}")
        print("  ...")

        # 3. Replay lazily: jobs are minted at their arrival instants while
        # the file is streamed; with keep_results=False nothing scales with
        # the number of records.
        simulator = MultiTenantSimulator(
            QuantumCloud(
                CloudTopology.line(4),
                computing_qubits_per_qpu=16,
                communication_qubits_per_qpu=4,
                epr_success_probability=0.95,
            ),
            placement_algorithm=RandomPlacement(),
            network_scheduler=CloudQCScheduler(),
            batch_manager=fifo_batch_manager(),
            admission_policy=QueueingDeadline(max_delay=300.0),
        )
        sink = Telemetry()
        simulator.run_stream(seed=1, telemetry=sink, keep_results=False, trace=path)

    summary = StreamSummary.from_telemetry(sink)
    print(
        f"\nreplayed from disk: {summary.total} arrivals, "
        f"{summary.completed} completed, {summary.expired} expired"
    )
    print(
        f"queueing delay p50/p95/p99 = {summary.queueing.p50:.1f}/"
        f"{summary.queueing.p95:.1f}/{summary.queueing.p99:.1f} CX-time units, "
        f"max queue depth {summary.max_queue_depth}"
    )
    print(
        "\nThe replay never held the trace in memory: records were decoded "
        "one at a time\nand each job lived only from its arrival to its "
        "terminal outcome."
    )


if __name__ == "__main__":
    jobs_argument = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    format_argument = sys.argv[2] if len(sys.argv) > 2 else "jsonl"
    main(jobs_argument, format_argument)
