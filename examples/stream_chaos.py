#!/usr/bin/env python3
"""Fleet chaos: a seeded failure/drain/calibration storm under two policies.

Replays the anchor/burst stream of ``examples/stream_preemption.py`` while a
:class:`~repro.multitenant.FaultInjector` churns the fleet: a seedable
:class:`~repro.multitenant.ChaosSpec` samples hard QPU failures (in-flight
EPR work lost, jobs requeued), graceful drains (jobs live-migrated off
first), and calibration windows (degraded EPR success) as independent
renewal processes per QPU.  The same storm -- schedules are materialised
before the run, so injection never perturbs simulator randomness -- hits
both legs:

* ``NeverPreempt`` (the paper's irrevocable placements): jobs interrupted
  by an outage requeue behind the backlog and expire against the admission
  deadline;
* ``DeadlineRescue``: the eviction policy clears the post-outage backlog
  before fillers expire, and the stream keeps completing.

The table is read off the streaming :class:`~repro.multitenant.Telemetry`
sink, which also accounts the fleet itself: per-QPU downtime/availability,
interrupted jobs, and the storm's event counts.

Run with::

    python examples/stream_chaos.py [cycles] [seed]

``cycles`` defaults to 4 (a couple of seconds); the SLO-under-chaos scale
benchmark lives in ``benchmarks/test_fleet_chaos.py`` (``BENCH_8.json``).
"""

from __future__ import annotations

import argparse
import math

from repro.cloud import CloudTopology, QuantumCloud
from repro.multitenant import (
    ChaosSpec,
    DeadlineRescue,
    FaultInjector,
    MultiTenantSimulator,
    NeverPreempt,
    QueueingDeadline,
    StreamSummary,
    Telemetry,
    fifo_batch_manager,
    generate_anchor_burst_trace,
)
from repro.placement import CloudQCPlacement
from repro.scheduling import CloudQCScheduler

NUM_QPUS = 6
FILLERS_PER_CYCLE = 16
DEADLINE = 30.0
RESCUE_HORIZON = 5.0
#: Anchor-to-anchor gap of the 6-QPU anchor/burst trace.
CYCLE_PERIOD = 327.0


def make_simulator(preemption_policy, injector):
    cloud = QuantumCloud(
        CloudTopology.line(NUM_QPUS),
        computing_qubits_per_qpu=10,
        communication_qubits_per_qpu=4,
        epr_success_probability=0.95,
    )
    return MultiTenantSimulator(
        cloud,
        placement_algorithm=CloudQCPlacement(
            imbalance_factors=(0.05, 0.30), max_extra_parts=2
        ),
        network_scheduler=CloudQCScheduler(),
        batch_manager=fifo_batch_manager(),
        admission_policy=QueueingDeadline(max_delay=DEADLINE),
        preemption_policy=preemption_policy,
        fault_injector=injector,
    )


def make_injector(cycles: int, chaos_seed: int) -> FaultInjector:
    """A seeded storm over the whole trace; outages stay shorter than the
    admission deadline so interrupted jobs can still make it."""
    spec = ChaosSpec(
        duration=CYCLE_PERIOD * cycles,
        failure_rate=1.0 / (2.0 * CYCLE_PERIOD),
        drain_rate=1.0 / (3.0 * CYCLE_PERIOD),
        calibration_rate=1.0 / CYCLE_PERIOD,
        mean_repair_time=10.0,
        mean_drain_downtime=10.0,
        mean_calibration_duration=20.0,
        calibration_epr_probability=0.3,
    )
    return FaultInjector.from_spec(
        spec, range(NUM_QPUS), seed=chaos_seed, on_failure="requeue"
    )


def main(cycles: int, seed: int) -> None:
    if cycles < 1:
        raise SystemExit("cycles must be at least 1")
    trace = generate_anchor_burst_trace(
        cycles, FILLERS_PER_CYCLE, num_qpus=NUM_QPUS
    )
    storm = make_injector(cycles, chaos_seed=seed)
    print(
        f"trace: {len(trace)} jobs ({cycles} anchor/burst cycles), "
        f"storm: {len(storm.events)} fleet events, "
        f"queueing deadline {DEADLINE:.0f} CX-time units"
    )

    header = (
        f"{'policy':>16} {'done':>6} {'exp':>6} {'interrupted':>11} "
        f"{'evicts':>6} {'p99 JCT*':>10}"
    )
    print("\n" + header)
    print("-" * len(header))
    last_sink = None
    for policy in [NeverPreempt(), DeadlineRescue(horizon=RESCUE_HORIZON)]:
        # A fresh injector per leg: the storm is identical (same seed),
        # only the scheduler's reaction differs.
        simulator = make_simulator(policy, make_injector(cycles, seed))
        sink = Telemetry()
        simulator.run_stream(
            trace.circuits,
            trace.arrival_times,
            seed=seed,
            telemetry=sink,
            keep_results=False,
            tenants=trace.tenant_ids,
        )
        summary = StreamSummary.from_telemetry(sink)
        p99 = sink.drop_aware_jct_percentile(99)
        p99_text = "inf" if math.isinf(p99) else f"{p99:.1f}"
        print(
            f"{policy.name:>16} {summary.completed:>6} {summary.expired:>6} "
            f"{sink.interrupted_jobs:>11} "
            f"{summary.preemption.preemption_events:>6} "
            f"{p99_text:>10}"
        )
        last_sink = sink

    events = last_sink.fleet_events
    availability = last_sink.qpu_availability(CYCLE_PERIOD * cycles)
    print(
        f"\nstorm: {events['qpu_fail']} failures, {events['qpu_drain']} "
        f"drains, {events['calibration_start']} calibration windows"
    )
    for qpu_id, fraction in sorted(availability.items()):
        downtime = last_sink.qpu_downtime.get(qpu_id, 0.0)
        print(
            f"  qpu {qpu_id}: availability {fraction:.3f} "
            f"(down {downtime:.1f} time units)"
        )
    print(
        "\n*drop-aware p99 JCT: dropped jobs count as inf. Both legs ride "
        "the same seeded storm;\n only the preemption policy differs. "
        "Fleet rows aggregated online by the Telemetry sink."
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("cycles", type=int, nargs="?", default=4,
                        help="anchor/burst cycles (default 4)")
    parser.add_argument("seed", type=int, nargs="?", default=1,
                        help="simulation + storm seed (default 1)")
    cli_args = parser.parse_args()
    main(cli_args.cycles, cli_args.seed)
