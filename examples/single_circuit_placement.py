#!/usr/bin/env python3
"""Single-circuit placement study: CloudQC vs the baselines (Table III).

Places a handful of benchmark circuits on the default cloud with all five
placement algorithms (Simulated Annealing, Random, Genetic Algorithm,
CloudQC-BFS, CloudQC) and prints the number of remote operations and the
distance-weighted communication cost of each, reproducing the shape of
Table III and Figs. 6-9 of the paper.

Run with::

    python examples/single_circuit_placement.py [circuit ...]

e.g. ``python examples/single_circuit_placement.py adder_n64 qft_n63``.
"""

from __future__ import annotations

import sys

from repro.analysis import (
    default_cloud,
    default_placement_algorithms,
    format_table,
    single_circuit_placement,
)

DEFAULT_CIRCUITS = ["ghz_n127", "ising_n66", "knn_n67", "adder_n64", "qugan_n71"]


def main(circuit_names: list[str]) -> None:
    cloud = default_cloud(seed=7)
    algorithms = default_placement_algorithms(fast=True)

    print(f"Cloud: {cloud.num_qpus} QPUs, "
          f"{cloud.qpu(0).computing_capacity} computing qubits each, "
          f"{cloud.topology.num_links} quantum links\n")

    remote_ops = single_circuit_placement(
        circuit_names, algorithms, cloud=cloud, seed=1, metric="remote_operations"
    )
    print("Remote operations per placement algorithm (lower is better):")
    print(format_table(remote_ops, list(algorithms), precision=0))

    costs = single_circuit_placement(
        circuit_names, algorithms, cloud=cloud, seed=1, metric="communication_cost"
    )
    print("\nDistance-weighted communication cost (Eq. 1 of the paper):")
    print(format_table(costs, list(algorithms), precision=0))

    print(
        "\nExpected shape (Table III): CloudQC and CloudQC-BFS cut remote "
        "operations by several x on structured circuits; CloudQC additionally "
        "keeps the QPUs close, so its distance-weighted cost is the lowest."
    )


if __name__ == "__main__":
    main(sys.argv[1:] or DEFAULT_CIRCUITS)
