#!/usr/bin/env python3
"""Multi-tenant quantum cloud: a batch of tenants sharing 20 QPUs (Figs. 14-17).

Samples a batch of circuits from one of the paper's workload mixes, runs it
through the full CloudQC pipeline (batch manager -> placement -> network
scheduling) and through the CloudQC-BFS and CloudQC-FIFO baselines, and prints
per-job completion times plus a CDF summary.

Run with::

    python examples/multi_tenant_cloud.py [workload] [batch_size]

where workload is one of mixed, qft, qugan, arithmetic (default qugan).
"""

from __future__ import annotations

import sys

from repro.analysis import default_cloud, format_cdf_summary
from repro.multitenant import (
    CompletionStats,
    MultiTenantSimulator,
    fifo_batch_manager,
    generate_batch,
    priority_batch_manager,
)
from repro.placement import CloudQCBFSPlacement, CloudQCPlacement
from repro.scheduling import CloudQCScheduler


def main(workload: str, batch_size: int) -> None:
    cloud = default_cloud(seed=7)
    batch = generate_batch(workload, batch_size=batch_size, seed=1)
    print(f"Workload: {workload}, batch of {batch_size} circuits")
    print("  " + ", ".join(circuit.name for circuit in batch))

    methods = {
        "CloudQC": (CloudQCPlacement(), priority_batch_manager()),
        "CloudQC-BFS": (CloudQCBFSPlacement(), priority_batch_manager()),
        "CloudQC-FIFO": (CloudQCPlacement(), fifo_batch_manager()),
    }

    distribution = {}
    for label, (placer, manager) in methods.items():
        simulator = MultiTenantSimulator(
            cloud,
            placement_algorithm=placer,
            network_scheduler=CloudQCScheduler(),
            batch_manager=manager,
        )
        results = simulator.run_batch(batch, seed=2)
        times = [result.job_completion_time for result in results]
        distribution[label] = times
        stats = CompletionStats.from_times(times)
        print(f"\n{label}:")
        print(f"  mean JCT   : {stats.mean:.0f} CX units")
        print(f"  median JCT : {stats.median:.0f}")
        print(f"  p90 JCT    : {stats.p90:.0f}")
        print(f"  batch makespan: {stats.maximum:.0f}")
        slowest = max(results, key=lambda r: r.job_completion_time)
        print(
            f"  slowest job: {slowest.circuit_name} "
            f"(queued {slowest.queueing_delay:.0f}, "
            f"{slowest.num_remote_operations} remote gates on "
            f"{slowest.num_qpus_used} QPUs)"
        )

    print("\nJCT distribution summary (the CDFs of Figs. 14-17):")
    print(format_cdf_summary(distribution))


if __name__ == "__main__":
    workload_argument = sys.argv[1] if len(sys.argv) > 1 else "qugan"
    batch_size_argument = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    main(workload_argument, batch_size_argument)
