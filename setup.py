"""Setuptools shim so editable installs work on minimal offline environments."""

from setuptools import setup

setup()
